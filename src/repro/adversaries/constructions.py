"""Adversary constructions from the impossibility proofs (Theorems 1, 2, 3, 4).

Each construction follows the corresponding proof literally:

* :class:`Theorem1Adversary` — an online adaptive adversary against any
  no-knowledge algorithm on 3 nodes ``{a, b, s}``.  It watches which node
  (if any) transmits and then repeats interactions that keep the remaining
  data away from the sink forever, while a convergecast remains possible.
* :class:`Theorem2Construction` — an *oblivious* adversary against oblivious
  randomized algorithms: a prefix ``I^{l_0}`` of sink interactions followed
  by an infinitely repeated pattern ``I'`` that forces the data of a node
  that (with high probability) still owns data through a path blocked by a
  node that no longer owns data.  ``l_0`` and the blocked node are found by
  Monte-Carlo estimation, mirroring the probabilistic argument of the proof.
* :class:`Theorem3Adversary` — an online adaptive adversary on the 4-cycle
  that defeats any algorithm knowing only the underlying graph G-bar.
* :func:`theorem4_delaying_sequence` — a recurrent sequence on a non-tree
  footprint showing that the cost of the spanning-tree algorithm, although
  finite, is unbounded (Theorem 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.algorithm import DODAAlgorithm
from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from ..core.execution import Executor
from ..core.interaction import Interaction, InteractionSequence
from ..core.node import NetworkState
from .base import AdaptiveAdversary, EventuallyPeriodicAdversary


class Theorem1Adversary(AdaptiveAdversary):
    """The 3-node adaptive adversary of Theorem 1.

    Nodes are ``a``, ``b`` and the sink ``s``.  The adversary starts with
    ``{a, b}`` and then reacts to the algorithm's choices:

    * if ``a`` transmitted, it repeats ``{a, s}, {a, b}`` forever so ``b``
      can never transmit;
    * if ``b`` transmitted, symmetrically;
    * if nobody transmitted, it offers ``{b, s}``; if ``b`` transmits there
      it repeats ``{a, b}, {b, s}`` forever so ``a`` can never transmit;
      otherwise it offers ``{a, b}`` again and repeats the reasoning.
    """

    def __init__(self, a: NodeId = "a", b: NodeId = "b", sink: NodeId = "s") -> None:
        self.a = a
        self.b = b
        self.sink = sink
        self._locked_cycle: Optional[List[Tuple[NodeId, NodeId]]] = None
        self._cycle_position = 0
        self._last_offer: Optional[str] = None  # "ab" or "bs"

    def reset(self) -> None:
        self._locked_cycle = None
        self._cycle_position = 0
        self._last_offer = None

    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        a, b, s = self.a, self.b, self.sink
        if self._locked_cycle is None:
            a_transmitted = state.has_transmitted(a)
            b_transmitted = state.has_transmitted(b)
            if self._last_offer == "ab" and a_transmitted:
                # a gave its data to b: starve b forever (b only meets a,
                # which can no longer receive).
                self._locked_cycle = [(a, s), (a, b)]
            elif self._last_offer == "ab" and b_transmitted:
                # b gave its data to a: starve a symmetrically.
                self._locked_cycle = [(b, s), (a, b)]
            elif self._last_offer == "bs" and b_transmitted:
                # b sent its data to the sink: a can now only ever meet b,
                # which can no longer receive.
                self._locked_cycle = [(a, b), (b, s)]
        if self._locked_cycle is not None:
            pair = self._locked_cycle[self._cycle_position % len(self._locked_cycle)]
            self._cycle_position += 1
            return Interaction(time=time, u=pair[0], v=pair[1])
        # Not locked yet: alternate {a, b} and {b, s} probes.
        if self._last_offer in (None, "bs"):
            self._last_offer = "ab"
            return Interaction(time=time, u=a, v=b)
        self._last_offer = "bs"
        return Interaction(time=time, u=b, v=s)

    def nodes(self) -> List[NodeId]:
        """The three nodes of the construction."""
        return [self.a, self.b, self.sink]


class Theorem3Adversary(AdaptiveAdversary):
    """The 4-node adaptive adversary of Theorem 3 (nodes know G-bar).

    The underlying graph is the cycle ``s - u1 - u2 - u3 - s``.  The
    adversary plays the block ``{u1,s}, {u3,s}, {u2,u1}, {u2,u3}`` and locks
    onto a starving cycle as soon as ``u2`` transmits towards ``u1`` or
    ``u3``; otherwise it repeats the block.
    """

    def __init__(
        self,
        u1: NodeId = "u1",
        u2: NodeId = "u2",
        u3: NodeId = "u3",
        sink: NodeId = "s",
    ) -> None:
        self.u1 = u1
        self.u2 = u2
        self.u3 = u3
        self.sink = sink
        self._locked_cycle: Optional[List[Tuple[NodeId, NodeId]]] = None
        self._cycle_position = 0
        self._block_position = 0

    def reset(self) -> None:
        self._locked_cycle = None
        self._cycle_position = 0
        self._block_position = 0

    def underlying_graph_edges(self) -> List[Tuple[NodeId, NodeId]]:
        """The edges of the committed footprint (the 4-cycle)."""
        return [
            (self.sink, self.u1),
            (self.u1, self.u2),
            (self.u2, self.u3),
            (self.u3, self.sink),
        ]

    def nodes(self) -> List[NodeId]:
        """The four nodes of the construction."""
        return [self.sink, self.u1, self.u2, self.u3]

    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        u1, u2, u3, s = self.u1, self.u2, self.u3, self.sink
        if self._locked_cycle is None and state.has_transmitted(u2):
            # u2 transmitted to u1 or u3 during the probing block.  The
            # receiver is identified by the block position: u2 interacts
            # with u1 at block offset 2 and with u3 at offset 3, and this
            # method is called with the position already advanced past the
            # interaction where the transmission happened.
            if self._block_position % 4 == 3:
                receiver = u1
            else:
                receiver = u3
            if receiver == u1:
                self._locked_cycle = [(u1, u2), (u2, u3), (u3, s)]
            else:
                self._locked_cycle = [(u3, u2), (u2, u1), (u1, s)]
        if self._locked_cycle is not None:
            pair = self._locked_cycle[self._cycle_position % len(self._locked_cycle)]
            self._cycle_position += 1
            return Interaction(time=time, u=pair[0], v=pair[1])
        block = [(u1, s), (u3, s), (u2, u1), (u2, u3)]
        pair = block[self._block_position % 4]
        self._block_position += 1
        return Interaction(time=time, u=pair[0], v=pair[1])


@dataclass
class Theorem2Construction:
    """Builder of the oblivious adversary of Theorem 2.

    The adversary defeats *oblivious* randomized algorithms: a prefix of
    sink interactions ``I^{l_0}`` (after which at least one node has
    transmitted with probability ``>= 1 - 1/n``) followed by the infinitely
    repeated pattern ``I'`` that routes the data of a node ``u_d`` (which
    still owns data with high probability) through a chain containing a node
    that no longer owns data.

    ``l_0`` and ``d`` are found by Monte-Carlo simulation of the target
    algorithm on prefixes of ``I^∞``, mirroring the probabilistic reasoning
    of the proof (the proof chooses them from the exact transmission
    probabilities, which are not available in closed form for an arbitrary
    algorithm).
    """

    n: int
    estimation_trials: int = 200
    max_prefix: Optional[int] = None
    seed: Optional[int] = None

    def node_names(self) -> List[NodeId]:
        """The sink ``s`` and nodes ``u0 .. u_{n-2}``."""
        return ["s"] + [f"u{i}" for i in range(self.n - 1)]

    def sink(self) -> NodeId:
        return "s"

    def star_prefix(self, length: int) -> List[Tuple[NodeId, NodeId]]:
        """``I^length``: interaction ``{u_{i mod (n-1)}, s}`` at each time i."""
        return [(f"u{i % (self.n - 1)}", "s") for i in range(length)]

    def build(
        self, algorithm_factory: Callable[[], DODAAlgorithm]
    ) -> EventuallyPeriodicAdversary:
        """Construct the adversary for the algorithm built by ``algorithm_factory``.

        Args:
            algorithm_factory: zero-argument callable returning a fresh
                instance of the (oblivious) algorithm under attack.

        Returns:
            An :class:`EventuallyPeriodicAdversary` implementing
            ``I^{l_0}`` followed by ``I'`` repeated forever.
        """
        if self.n < 4:
            raise ConfigurationError("the construction needs at least 4 nodes")
        nodes = self.node_names()
        sink = self.sink()
        max_prefix = self.max_prefix or 4 * self.n

        # Monte-Carlo estimate of, for each prefix length l, the probability
        # that no node has transmitted yet, and of which nodes still own data.
        first_transmission: List[int] = []
        still_owns_after: Dict[int, Dict[NodeId, int]] = {}
        prefix_pairs = self.star_prefix(max_prefix)
        sequence = InteractionSequence.from_pairs(prefix_pairs)
        for _ in range(self.estimation_trials):
            algorithm = algorithm_factory()
            executor = Executor(nodes, sink, algorithm)
            result = executor.run(sequence)
            if result.transmissions:
                first = result.transmissions[0].time
            else:
                first = max_prefix
            first_transmission.append(first)
            owners_after_first = set(nodes) - {
                t.sender for t in result.transmissions if t.time <= first
            }
            bucket = still_owns_after.setdefault(first, {})
            for node in sorted(owners_after_first, key=str):
                bucket[node] = bucket.get(node, 0) + 1

        # l0 = smallest l such that P(no transmission during I^l) < 1/n,
        # estimated as the empirical quantile of the first transmission time.
        threshold = 1.0 / self.n
        l0 = max_prefix
        sorted_first = sorted(first_transmission)
        trials = len(sorted_first)
        for length in range(1, max_prefix + 1):
            not_transmitted = sum(1 for f in sorted_first if f >= length) / trials
            if not_transmitted < threshold:
                l0 = length
                break

        # u_d: a node, different from u_{l0-1 mod (n-1)} (the node interacting
        # at the last prefix slot), that most often still owns data.
        last_prefix_node = f"u{(l0 - 1) % (self.n - 1)}" if l0 > 0 else None
        ownership_votes: Dict[NodeId, int] = {}
        for first, bucket in still_owns_after.items():
            if first < l0:
                for node, count in bucket.items():
                    ownership_votes[node] = ownership_votes.get(node, 0) + count
        candidates = [
            node
            for node in nodes
            if node != sink and node != last_prefix_node
        ]
        if ownership_votes:
            candidates.sort(key=lambda node: -ownership_votes.get(node, 0))
        d = int(candidates[0][1:]) if candidates else 1

        cycle = self.blocking_cycle(d)
        return EventuallyPeriodicAdversary(
            prefix=self.star_prefix(l0), cycle=cycle
        )

    def blocking_cycle(self, d: int) -> List[Tuple[NodeId, NodeId]]:
        """The pattern ``I'`` of the proof for the blocked node ``u_d``.

        ``I'_i = {u_i, u_{i+1}}`` for ``i != d-1`` and ``I'_{d-1} = {u_{d-1}, s}``
        (indices modulo ``n-1``).
        """
        m = self.n - 1
        pattern: List[Tuple[NodeId, NodeId]] = []
        for i in range(m):
            if i == (d - 1) % m:
                pattern.append((f"u{(d - 1) % m}", "s"))
            else:
                pattern.append((f"u{i % m}", f"u{(i + 1) % m}"))
        return pattern


def theorem4_delaying_sequence(
    n: int,
    delay_rounds: int,
    sink: NodeId = 0,
) -> Tuple[List[NodeId], InteractionSequence]:
    """A recurrent sequence showing the unbounded cost of Theorem 4.

    The footprint is a cycle on ``n`` nodes (not a tree, so two spanning
    trees exist).  The sequence repeats ``delay_rounds`` rounds in which all
    cycle edges *except* one fixed edge ``e`` appear (allowing an arbitrary
    number of offline convergecasts through the alternative spanning tree),
    and only then lets ``e`` appear.  Any algorithm that committed to a
    spanning tree containing ``e`` waits through all those rounds, so its
    cost grows linearly with ``delay_rounds`` although it stays finite.
    """
    if n < 4:
        raise ConfigurationError("need at least 4 nodes for a useful cycle")
    nodes: List[NodeId] = list(range(n))
    if sink not in nodes:
        raise ConfigurationError("sink must be one of 0..n-1")
    cycle_edges = [(i, (i + 1) % n) for i in range(n)]
    # The withheld edge: the one between the sink and its predecessor.
    withheld = ((sink - 1) % n, sink)
    frequent_edges = [
        edge for edge in cycle_edges if frozenset(edge) != frozenset(withheld)
    ]
    pairs: List[Tuple[NodeId, NodeId]] = []
    for _ in range(delay_rounds):
        # Emit the frequent edges ordered so that a convergecast through the
        # path avoiding the withheld edge completes within the round.
        ordered = _path_order_towards_sink(frequent_edges, sink, n)
        pairs.extend(ordered)
    pairs.append(withheld)
    # A final pass of frequent edges so the recurrent-algorithm run can finish.
    pairs.extend(_path_order_towards_sink(frequent_edges, sink, n))
    return nodes, InteractionSequence.from_pairs(pairs)


def _path_order_towards_sink(
    edges: Sequence[Tuple[NodeId, NodeId]], sink: NodeId, n: int
) -> List[Tuple[NodeId, NodeId]]:
    """Order path edges so data can flow towards the sink within one round.

    The frequent edges form a path ending at the sink (the cycle minus one
    sink-adjacent edge); emitting them from the far end towards the sink
    makes a single round sufficient for an offline convergecast.
    """
    # The path is sink, sink+1, ..., sink-1 (mod n) without the withheld edge;
    # emit edges starting from the end farthest from the sink.
    ordered: List[Tuple[NodeId, NodeId]] = []
    for offset in range(n - 1, 0, -1):
        u = (sink + offset) % n
        v = (sink + offset - 1) % n
        if any(frozenset(edge) == frozenset((u, v)) for edge in edges):
            ordered.append((u, v))
    return ordered

"""The committed-block adversary protocol.

Committed adversaries fix their future independently of the algorithm's
decisions: the same object answers both the executor's ``interaction_at``
queries and the knowledge oracles' ``next_meeting`` queries, so ``meetTime``
and ``future`` are always consistent with the interactions the executor
replays.  This module hosts the machinery every such adversary shares —
uniform randomized (Section 4), non-uniform randomized (concluding remarks,
Q3), and the mobility families in :mod:`repro.adversaries.mobility`:

* committed draws stored as dense node-index numpy buffers with amortised
  O(1) growth (:meth:`CommittedBlockAdversary.draw_block`);
* fixed-chunk extension (:data:`COMMIT_CHUNK`) so the committed future for a
  given seed does not depend on the query pattern — single
  ``interaction_at`` calls, block reads from the fast engine, oracle
  extensions from ``next_meeting``, or parallel workers re-deriving the same
  trial all observe the same sequence;
* batched reads (:meth:`CommittedBlockAdversary.committed_index_block`),
  which is what lets :class:`~repro.core.fast_execution.FastExecutor`
  consume *any* committed adversary without per-interaction allocations;
* lazily built per-pair meeting indices backing ``next_meeting``.

Subclasses implement a single hook, :meth:`_sample_block`, which draws the
next ``k`` pairs of dense node indices.  Adversaries with a *finite*
committed future (trace replay) may return fewer than requested; the base
class then treats the future as exhausted.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from ..core.interaction import Interaction, InteractionSequence
from ..core.node import NetworkState
from .base import Adversary

#: Committed draws are extended in fixed chunks of this many interactions so
#: that the RNG stream is consumed identically regardless of the query
#: pattern (chunk boundaries never depend on *which* query forced growth).
#: The chunk is sized by the engine micro-benchmarks: large enough to
#: amortise per-chunk sampling overhead on long horizons (the n >= 100
#: sweeps draw hundreds of thousands of pairs), small enough that
#: oracle-driven scans (Waiting Greedy's meet tables) do not over-draw;
#: ``max_horizon`` still caps the waste on short runs.
COMMIT_CHUNK = 8192


class CommittedBlockAdversary(Adversary):
    """Base class for adversaries committing their future in index blocks.

    Args:
        nodes: the node set (must contain at least two nodes).
        max_horizon: safety cap on how far the committed future may be
            extended by oracle queries (``next_meeting`` returns None beyond
            it).  The executor's own horizon is handled separately through
            ``max_interactions``.
    """

    def __init__(
        self,
        nodes: Sequence[NodeId],
        max_horizon: int = 10_000_000,
    ) -> None:
        self._nodes: List[NodeId] = list(nodes)
        if len(self._nodes) < 2:
            raise ConfigurationError("need at least two nodes")
        self._index_of: Dict[NodeId, int] = {
            node: position for position, node in enumerate(self._nodes)
        }
        self._max_horizon = max_horizon
        # Committed draws, stored as dense node indices in doubling buffers
        # (amortised O(1) growth) plus a canonical pair code per interaction
        # used for vectorised meeting lookups.
        self._size = 0
        self._exhausted = False
        self._pi = np.empty(0, dtype=np.int64)
        self._pj = np.empty(0, dtype=np.int64)
        # Canonical pair codes are derived data used only by the per-pair
        # meeting index (``next_meeting``); they are computed lazily up to
        # ``_codes_size`` so block consumers that never query meetings (the
        # trial-vectorized engine) skip the work entirely.
        self._codes = np.empty(0, dtype=np.int64)
        self._codes_size = 0
        # Per-pair sorted list of meeting times, built lazily per queried
        # pair; the watermark records how much of the committed prefix the
        # pair's list already covers.
        self._meeting_index: Dict[int, List[int]] = {}
        self._meeting_watermark: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #
    def _sample_block(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw the next ``k`` pairs, as dense node-index arrays.

        Adversaries with an infinite committed future return exactly ``k``
        pairs; finite ones (trace replay) may return fewer — the committed
        future is then considered exhausted.  Draws must be a pure function
        of the construction arguments and the number of pairs drawn so far,
        never of ``k``'s split across calls beyond chunk alignment.
        """
        raise NotImplementedError

    def _meeting_search_block(self, iu: int, iv: int) -> int:
        """How far to extend the future per ``next_meeting`` probe.

        Sized to the expected waiting time of a specific pair so the search
        cost is amortised; subclasses with skewed pair distributions
        override this with a per-pair estimate.
        """
        n = len(self._nodes)
        return max(COMMIT_CHUNK, n * n // 2)

    # ------------------------------------------------------------------ #
    # Committed-future machinery
    # ------------------------------------------------------------------ #
    def draw_block(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw and *commit* ``k`` more pairs, as dense node-index arrays.

        The drawn pairs are appended to the committed sequence (truncated at
        ``max_horizon``), so what this method returns is always exactly what
        the adversary will replay — drawing can never desynchronise the
        sampling state from the committed future.  Note that direct calls
        with arbitrary ``k`` change the chunk alignment relative to an
        adversary grown only through queries; the committed future stays
        internally consistent either way.  Finite adversaries may return
        fewer than ``k`` pairs (empty once exhausted).
        """
        k = min(k, self._max_horizon - self._size)
        if k <= 0 or self._exhausted:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        i, j = self._sample_block(k)
        count = i.shape[0]
        if count < k:
            self._exhausted = True
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        self._grow(count)
        start, stop = self._size, self._size + count
        self._pi[start:stop] = i
        self._pj[start:stop] = j
        self._size = stop
        return i, j

    def _grow(self, extra: int) -> None:
        """Ensure the buffers can hold ``extra`` more committed interactions."""
        needed = self._size + extra
        if needed <= self._pi.shape[0]:
            return
        capacity = max(needed, 2 * self._pi.shape[0], COMMIT_CHUNK)
        for name in ("_pi", "_pj"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=np.int64)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    def _codes_upto(self, stop: int) -> None:
        """Materialise canonical pair codes for the committed prefix."""
        if stop <= self._codes_size:
            return
        if self._codes.shape[0] < self._pi.shape[0]:
            grown = np.empty(self._pi.shape[0], dtype=np.int64)
            grown[: self._codes_size] = self._codes[: self._codes_size]
            self._codes = grown
        start = self._codes_size
        i = self._pi[start:stop]
        j = self._pj[start:stop]
        n = len(self._nodes)
        self._codes[start:stop] = np.minimum(i, j) * n + np.maximum(i, j)
        self._codes_size = stop

    def ensure_committed(self, length: int) -> None:
        """Extend the committed sequence to at least ``length`` interactions.

        Growth happens in fixed :data:`COMMIT_CHUNK` batches so the sampling
        state consumption — and therefore the committed future — does not
        depend on which query forced the growth.
        """
        if length > self._max_horizon:
            length = self._max_horizon
        if length > self._size:
            # One allocation for the whole extension instead of a doubling
            # reallocation per chunk.
            self._grow(length - self._size)
        while self._size < length and not self._exhausted:
            self.draw_block(COMMIT_CHUNK)

    @property
    def committed_length(self) -> int:
        """Number of interactions committed so far."""
        return self._size

    @property
    def future_exhausted(self) -> bool:
        """True once a finite committed future has been fully drawn."""
        return self._exhausted

    def committed_pair(self, time: int) -> Tuple[NodeId, NodeId]:
        """The committed pair at ``time`` (which must already be committed)."""
        return (
            self._nodes[int(self._pi[time])],
            self._nodes[int(self._pj[time])],
        )

    def committed_prefix(self, length: int) -> InteractionSequence:
        """The first ``length`` committed interactions as a sequence."""
        self.ensure_committed(length)
        length = min(length, self._size)
        nodes = self._nodes
        pairs = [
            (nodes[i], nodes[j])
            for i, j in zip(
                self._pi[:length].tolist(), self._pj[:length].tolist()
            )
        ]
        return InteractionSequence.from_pairs(pairs)

    def committed_index_block(
        self, start: int, stop: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Committed pairs in ``[start, stop)`` as dense node-index arrays.

        Commits further draws as needed; the returned block is truncated at
        ``max_horizon`` (or at a finite future's end), so it may be shorter
        than requested — empty once the committed future is exhausted.  This
        is the fast engine's batched alternative to per-interaction
        :meth:`interaction_at` calls.
        """
        self.ensure_committed(stop)
        stop = min(stop, self._size)
        if start >= stop:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return self._pi[start:stop], self._pj[start:stop]

    @classmethod
    def committed_index_matrix(
        cls,
        adversaries: Sequence["CommittedBlockAdversary"],
        start: int,
        stop,
        pad: int = -1,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stack one committed block per adversary into ``(B, L)`` matrices.

        The trial-vectorized engine consumes a whole sweep cell of ``B``
        committed futures at once; this assembles, for the shared window
        starting at ``start``, the dense node-index matrices ``I`` and ``J``
        (one row per adversary) plus the per-row committed lengths.

        Args:
            adversaries: the cell's committed adversaries (or any objects
                implementing ``committed_index_block``), one per trial row.
            start: first interaction time of the window.
            stop: exclusive end of the window — an ``int`` shared by every
                row, or a per-row sequence (rows with ``stop <= start``
                contribute an empty row).
            pad: fill value for rows shorter than the widest (default -1,
                which no dense node index ever takes).

        Returns:
            ``(I, J, lengths)`` where ``I``/``J`` have shape ``(B, L)`` with
            ``L`` the widest row (0 when every row is empty) and
            ``lengths[b]`` is row ``b``'s committed count; entries beyond a
            row's length hold ``pad``.  A row shorter than requested means
            that adversary's committed future is exhausted (finite trace or
            ``max_horizon``).
        """
        count = len(adversaries)
        if isinstance(stop, (int, np.integer)):
            stops = [int(stop)] * count
        else:
            stops = [int(value) for value in stop]
            if len(stops) != count:
                raise ConfigurationError(
                    f"got {len(stops)} stops for {count} adversaries"
                )
        blocks = [
            adversary.committed_index_block(start, row_stop)
            if row_stop > start
            else (np.empty(0, dtype=np.int64),) * 2
            for adversary, row_stop in zip(adversaries, stops)
        ]
        lengths = np.array([i.shape[0] for i, _ in blocks], dtype=np.int64)
        width = int(lengths.max()) if count else 0
        matrix_i = np.full((count, width), pad, dtype=np.int64)
        matrix_j = np.full((count, width), pad, dtype=np.int64)
        for row, (i, j) in enumerate(blocks):
            matrix_i[row, : i.shape[0]] = i
            matrix_j[row, : j.shape[0]] = j
        return matrix_i, matrix_j, lengths

    # ------------------------------------------------------------------ #
    # InteractionProvider protocol
    # ------------------------------------------------------------------ #
    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        if time >= self._max_horizon:
            return None
        self.ensure_committed(time + 1)
        if time >= self._size:
            return None
        u, v = self.committed_pair(time)
        return Interaction(time=time, u=u, v=v)

    # ------------------------------------------------------------------ #
    # Committed-future queries (for knowledge oracles)
    # ------------------------------------------------------------------ #
    def _meeting_times(self, code: int) -> List[int]:
        """Sorted committed meeting times of the pair ``code``, up to date.

        The per-pair list is built (and later extended) by one vectorised
        scan of the committed suffix since the pair's watermark, so only
        pairs that are actually queried ever pay for indexing.
        """
        times = self._meeting_index.get(code)
        if times is None:
            times = []
            self._meeting_index[code] = times
            scanned = 0
        else:
            scanned = self._meeting_watermark.get(code, 0)
        if scanned < self._size:
            self._codes_upto(self._size)
            hits = np.nonzero(self._codes[scanned : self._size] == code)[0]
            if hits.size:
                times.extend((hits + scanned).tolist())
        self._meeting_watermark[code] = self._size
        return times

    def next_meeting(
        self, node: NodeId, peer: NodeId, after: int
    ) -> Optional[int]:
        """Next committed time ``> after`` at which ``{node, peer}`` interact.

        Extends the committed future (in blocks) until the meeting is found,
        the safety horizon is reached, or a finite future runs dry.
        """
        iu = self._index_of.get(node)
        iv = self._index_of.get(peer)
        if iu is None or iv is None or iu == iv:
            return None
        n = len(self._nodes)
        code = min(iu, iv) * n + max(iu, iv)
        while True:
            times = self._meeting_times(code)
            position = bisect_right(times, after)
            if position < len(times):
                return times[position]
            if self._size >= self._max_horizon or self._exhausted:
                return None
            self.ensure_committed(
                self._size + self._meeting_search_block(iu, iv)
            )

    def nodes(self) -> List[NodeId]:
        """The node set the adversary draws from."""
        return list(self._nodes)

"""Adversary interfaces.

The adversary controls the dynamics of the network: it decides which
interaction occurs at each time step.  Three families are modelled, matching
Section 2.2 of the paper:

* *oblivious* — the whole sequence is fixed before the execution starts
  (possibly eventually periodic, to model infinite sequences);
* *online adaptive* — the next interaction may depend on the algorithm's
  past decisions, which the adversary observes through the network state;
* *randomized* — every interaction is drawn uniformly at random among all
  pairs.

All adversaries implement the executor's
:class:`~repro.core.execution.InteractionProvider` protocol.  Adversaries
that *commit* to their future (oblivious and randomized ones) additionally
implement ``next_meeting`` so that knowledge oracles (``meetTime``,
``future``) can answer consistently with what the executor will replay.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from ..core.interaction import Interaction, InteractionSequence
from ..core.node import NetworkState


class Adversary:
    """Base class for adversaries (interaction providers)."""

    #: Human-readable adversary family, one of "oblivious", "adaptive",
    #: "randomized"; used in reports.
    family: str = "abstract"

    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        """Return the interaction occurring at ``time`` (None if exhausted)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any per-execution internal state (default: nothing to do)."""

    def committed_prefix(self, length: int) -> InteractionSequence:
        """The first ``length`` interactions, for adversaries that commit.

        Adaptive adversaries cannot answer this before an execution; they
        raise :class:`ConfigurationError`.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not commit to its future"
        )


class EventuallyPeriodicAdversary(Adversary):
    """An oblivious adversary defined by a finite prefix and a repeated cycle.

    This is how the paper's impossibility constructions describe infinite
    sequences ("... and then repeat the following interactions forever").
    With an empty cycle the adversary is simply a finite fixed sequence.
    """

    family = "oblivious"

    def __init__(
        self,
        prefix: Iterable[Tuple[NodeId, NodeId]],
        cycle: Iterable[Tuple[NodeId, NodeId]] = (),
    ) -> None:
        self._prefix: List[Tuple[NodeId, NodeId]] = list(prefix)
        self._cycle: List[Tuple[NodeId, NodeId]] = list(cycle)

    # -- InteractionProvider ------------------------------------------- #
    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        pair = self.pair_at(time)
        if pair is None:
            return None
        u, v = pair
        return Interaction(time=time, u=u, v=v)

    # -- committed future ---------------------------------------------- #
    def pair_at(self, time: int) -> Optional[Tuple[NodeId, NodeId]]:
        """The pair interacting at ``time`` (None past a finite sequence)."""
        if time < len(self._prefix):
            return self._prefix[time]
        if not self._cycle:
            return None
        offset = (time - len(self._prefix)) % len(self._cycle)
        return self._cycle[offset]

    def next_meeting(
        self, node: NodeId, peer: NodeId, after: int
    ) -> Optional[int]:
        """Next time ``> after`` at which ``{node, peer}`` interact.

        For the periodic part the answer is found within one full cycle (or
        never).
        """
        target = frozenset((node, peer))
        time = after + 1
        # Scan the rest of the prefix.
        while time < len(self._prefix):
            if frozenset(self._prefix[time]) == target:
                return time
            time += 1
        if not self._cycle:
            return None
        # Scan at most one full cycle starting from the right offset.
        start = max(time, len(self._prefix))
        for delta in range(len(self._cycle)):
            candidate = start + delta
            offset = (candidate - len(self._prefix)) % len(self._cycle)
            if frozenset(self._cycle[offset]) == target:
                return candidate
        return None

    def committed_prefix(self, length: int) -> InteractionSequence:
        pairs = []
        for time in range(length):
            pair = self.pair_at(time)
            if pair is None:
                break
            pairs.append(pair)
        return InteractionSequence.from_pairs(pairs)

    @property
    def is_finite(self) -> bool:
        """True when the adversary has no repeated cycle."""
        return not self._cycle

    def __len__(self) -> int:
        if self._cycle:
            raise ConfigurationError("eventually periodic adversary is infinite")
        return len(self._prefix)


class AdaptiveAdversary(Adversary):
    """Base class for online adaptive adversaries.

    Subclasses implement :meth:`interaction_at` and may inspect the network
    state (who owns data, who has transmitted) to decide the next
    interaction, mirroring the paper's online adaptive adversary who "can
    use the past execution of the algorithm to construct the next
    interaction".
    """

    family = "adaptive"

"""The randomized adversary of Section 4.

Every interaction is a pair of nodes drawn uniformly at random among all
``n(n-1)/2`` pairs, independently of the past.  The adversary *commits* to
its draws: the same object answers both the executor's ``interaction_at``
queries and the knowledge oracles' ``next_meeting`` queries, so ``meetTime``
and ``future`` are always consistent with the interactions the executor
replays.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from ..core.interaction import Interaction, InteractionSequence
from ..core.node import NetworkState
from .base import Adversary


class RandomizedAdversary(Adversary):
    """Uniformly random pairwise interactions with a lazily committed future.

    Args:
        nodes: the node set (must contain at least two nodes).
        seed: RNG seed; two adversaries with the same node order and seed
            commit to the same sequence.
        max_horizon: safety cap on how far the committed future may be
            extended by oracle queries (``next_meeting`` returns None beyond
            it).  The executor's own horizon is handled separately through
            ``max_interactions``.
    """

    family = "randomized"

    def __init__(
        self,
        nodes: Sequence[NodeId],
        seed: Optional[int] = None,
        max_horizon: int = 10_000_000,
    ) -> None:
        self._nodes: List[NodeId] = list(nodes)
        if len(self._nodes) < 2:
            raise ConfigurationError("need at least two nodes")
        self._rng = random.Random(seed)
        self._max_horizon = max_horizon
        self._committed: List[Tuple[NodeId, NodeId]] = []
        # Per-node sorted list of times at which the node interacts with a
        # given peer; only filled for pairs that are actually queried.
        self._meeting_index: Dict[frozenset, List[int]] = {}

    # ------------------------------------------------------------------ #
    # Committed-future machinery
    # ------------------------------------------------------------------ #
    def _draw_pair(self) -> Tuple[NodeId, NodeId]:
        """Draw one pair uniformly among all unordered pairs."""
        n = len(self._nodes)
        i = self._rng.randrange(n)
        j = self._rng.randrange(n - 1)
        if j >= i:
            j += 1
        return (self._nodes[i], self._nodes[j])

    def ensure_committed(self, length: int) -> None:
        """Extend the committed sequence to at least ``length`` interactions."""
        if length > self._max_horizon:
            length = self._max_horizon
        while len(self._committed) < length:
            pair = self._draw_pair()
            time = len(self._committed)
            self._committed.append(pair)
            key = frozenset(pair)
            self._meeting_index.setdefault(key, []).append(time)

    @property
    def committed_length(self) -> int:
        """Number of interactions committed so far."""
        return len(self._committed)

    def committed_prefix(self, length: int) -> InteractionSequence:
        """The first ``length`` committed interactions as a sequence."""
        self.ensure_committed(length)
        return InteractionSequence.from_pairs(self._committed[:length])

    # ------------------------------------------------------------------ #
    # InteractionProvider protocol
    # ------------------------------------------------------------------ #
    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        if time >= self._max_horizon:
            return None
        self.ensure_committed(time + 1)
        u, v = self._committed[time]
        return Interaction(time=time, u=u, v=v)

    # ------------------------------------------------------------------ #
    # Committed-future queries (for knowledge oracles)
    # ------------------------------------------------------------------ #
    def next_meeting(
        self, node: NodeId, peer: NodeId, after: int
    ) -> Optional[int]:
        """Next committed time ``> after`` at which ``{node, peer}`` interact.

        Extends the committed future (in blocks) until the meeting is found
        or the safety horizon is reached.
        """
        key = frozenset((node, peer))
        while True:
            times = self._meeting_index.get(key, ())
            position = bisect_right(times, after)
            if position < len(times):
                return times[position]
            if len(self._committed) >= self._max_horizon:
                return None
            # Extend by blocks proportional to the expected waiting time
            # (n^2 / 2 interactions per specific pair) to amortise the cost.
            n = len(self._nodes)
            block = max(1024, n * n // 2)
            self.ensure_committed(len(self._committed) + block)

    def nodes(self) -> List[NodeId]:
        """The node set the adversary draws from."""
        return list(self._nodes)

"""The randomized adversary of Section 4.

Every interaction is a pair of nodes drawn uniformly at random among all
``n(n-1)/2`` pairs, independently of the past.  The adversary *commits* to
its draws: the same object answers both the executor's ``interaction_at``
queries and the knowledge oracles' ``next_meeting`` queries, so ``meetTime``
and ``future`` are always consistent with the interactions the executor
replays.

Draws are committed in fixed-size numpy batches (:meth:`draw_block`) instead
of one ``randrange`` pair at a time, so the committed future for a given
``(nodes, seed)`` is a pure function of the seed: it does not depend on the
query pattern (single ``interaction_at`` calls, block extensions from
``next_meeting``, parallel workers re-deriving the same trial) — a property
the fast execution engine and the parallel sweep runner rely on.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from ..core.interaction import Interaction, InteractionSequence
from ..core.node import NetworkState
from .base import Adversary

#: Committed draws are extended in fixed chunks of this many interactions so
#: that the RNG stream is consumed identically regardless of the query
#: pattern (chunk boundaries never depend on *which* query forced growth).
COMMIT_CHUNK = 4096


class RandomizedAdversary(Adversary):
    """Uniformly random pairwise interactions with a lazily committed future.

    Args:
        nodes: the node set (must contain at least two nodes).
        seed: RNG seed; two adversaries with the same node order and seed
            commit to the same sequence, in any process.
        max_horizon: safety cap on how far the committed future may be
            extended by oracle queries (``next_meeting`` returns None beyond
            it).  The executor's own horizon is handled separately through
            ``max_interactions``.
    """

    family = "randomized"

    def __init__(
        self,
        nodes: Sequence[NodeId],
        seed: Optional[int] = None,
        max_horizon: int = 10_000_000,
    ) -> None:
        self._nodes: List[NodeId] = list(nodes)
        if len(self._nodes) < 2:
            raise ConfigurationError("need at least two nodes")
        self._index_of: Dict[NodeId, int] = {
            node: position for position, node in enumerate(self._nodes)
        }
        self._rng = np.random.Generator(np.random.PCG64(seed))
        self._max_horizon = max_horizon
        # Committed draws, stored as dense node indices in doubling buffers
        # (amortised O(1) growth) plus a canonical pair code per interaction
        # used for vectorised meeting lookups.
        self._size = 0
        self._pi = np.empty(0, dtype=np.int64)
        self._pj = np.empty(0, dtype=np.int64)
        self._codes = np.empty(0, dtype=np.int64)
        # Per-pair sorted list of meeting times, built lazily per queried
        # pair; the watermark records how much of the committed prefix the
        # pair's list already covers.
        self._meeting_index: Dict[int, List[int]] = {}
        self._meeting_watermark: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Committed-future machinery
    # ------------------------------------------------------------------ #
    def draw_block(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw and *commit* ``k`` uniform pairs, as dense node-index arrays.

        Each pair is drawn with the classic two-step scheme (uniform ``i``,
        uniform ``j`` among the remaining ``n - 1`` indices), vectorised over
        the whole block, so the per-pair distribution is exactly uniform over
        the ``n(n-1)/2`` unordered pairs.

        The drawn pairs are appended to the committed sequence (truncated at
        ``max_horizon``), so what this method returns is always exactly what
        the adversary will replay — drawing can never desynchronise the RNG
        stream from the committed future.  Note that direct calls with
        arbitrary ``k`` change the chunk alignment relative to an adversary
        grown only through queries; the committed future stays internally
        consistent either way.
        """
        n = len(self._nodes)
        k = min(k, self._max_horizon - self._size)
        if k <= 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        i = self._rng.integers(0, n, size=k)
        j = self._rng.integers(0, n - 1, size=k)
        j = np.where(j >= i, j + 1, j)
        self._grow(k)
        start, stop = self._size, self._size + k
        self._pi[start:stop] = i
        self._pj[start:stop] = j
        self._codes[start:stop] = np.minimum(i, j) * n + np.maximum(i, j)
        self._size = stop
        return i, j

    def _grow(self, extra: int) -> None:
        """Ensure the buffers can hold ``extra`` more committed interactions."""
        needed = self._size + extra
        if needed <= self._pi.shape[0]:
            return
        capacity = max(needed, 2 * self._pi.shape[0], COMMIT_CHUNK)
        for name in ("_pi", "_pj", "_codes"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=np.int64)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    def ensure_committed(self, length: int) -> None:
        """Extend the committed sequence to at least ``length`` interactions.

        Growth happens in fixed :data:`COMMIT_CHUNK` batches so the RNG
        stream consumption — and therefore the committed future — does not
        depend on which query forced the growth.
        """
        if length > self._max_horizon:
            length = self._max_horizon
        while self._size < length:
            self.draw_block(COMMIT_CHUNK)

    @property
    def committed_length(self) -> int:
        """Number of interactions committed so far."""
        return self._size

    def committed_pair(self, time: int) -> Tuple[NodeId, NodeId]:
        """The committed pair at ``time`` (which must already be committed)."""
        return (
            self._nodes[int(self._pi[time])],
            self._nodes[int(self._pj[time])],
        )

    def committed_prefix(self, length: int) -> InteractionSequence:
        """The first ``length`` committed interactions as a sequence."""
        self.ensure_committed(length)
        length = min(length, self._size)
        nodes = self._nodes
        pairs = [
            (nodes[i], nodes[j])
            for i, j in zip(
                self._pi[:length].tolist(), self._pj[:length].tolist()
            )
        ]
        return InteractionSequence.from_pairs(pairs)

    def committed_index_block(
        self, start: int, stop: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Committed pairs in ``[start, stop)`` as dense node-index arrays.

        Commits further draws as needed; the returned block is truncated at
        ``max_horizon``, so it may be shorter than requested (empty once the
        safety horizon is exhausted).  This is the fast engine's batched
        alternative to per-interaction :meth:`interaction_at` calls.
        """
        self.ensure_committed(stop)
        stop = min(stop, self._size)
        if start >= stop:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return self._pi[start:stop], self._pj[start:stop]

    # ------------------------------------------------------------------ #
    # InteractionProvider protocol
    # ------------------------------------------------------------------ #
    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        if time >= self._max_horizon:
            return None
        self.ensure_committed(time + 1)
        u, v = self.committed_pair(time)
        return Interaction(time=time, u=u, v=v)

    # ------------------------------------------------------------------ #
    # Committed-future queries (for knowledge oracles)
    # ------------------------------------------------------------------ #
    def _meeting_times(self, code: int) -> List[int]:
        """Sorted committed meeting times of the pair ``code``, up to date.

        The per-pair list is built (and later extended) by one vectorised
        scan of the committed suffix since the pair's watermark, so only
        pairs that are actually queried ever pay for indexing.
        """
        times = self._meeting_index.get(code)
        if times is None:
            times = []
            self._meeting_index[code] = times
            scanned = 0
        else:
            scanned = self._meeting_watermark.get(code, 0)
        if scanned < self._size:
            hits = np.nonzero(self._codes[scanned : self._size] == code)[0]
            if hits.size:
                times.extend((hits + scanned).tolist())
        self._meeting_watermark[code] = self._size
        return times

    def next_meeting(
        self, node: NodeId, peer: NodeId, after: int
    ) -> Optional[int]:
        """Next committed time ``> after`` at which ``{node, peer}`` interact.

        Extends the committed future (in blocks) until the meeting is found
        or the safety horizon is reached.
        """
        iu = self._index_of.get(node)
        iv = self._index_of.get(peer)
        if iu is None or iv is None or iu == iv:
            return None
        n = len(self._nodes)
        code = min(iu, iv) * n + max(iu, iv)
        while True:
            times = self._meeting_times(code)
            position = bisect_right(times, after)
            if position < len(times):
                return times[position]
            if self._size >= self._max_horizon:
                return None
            # Extend by blocks proportional to the expected waiting time
            # (n^2 / 2 interactions per specific pair) to amortise the cost.
            block = max(COMMIT_CHUNK, n * n // 2)
            self.ensure_committed(self._size + block)

    def nodes(self) -> List[NodeId]:
        """The node set the adversary draws from."""
        return list(self._nodes)

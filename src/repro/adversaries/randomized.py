"""The randomized adversary of Section 4.

Every interaction is a pair of nodes drawn uniformly at random among all
``n(n-1)/2`` pairs, independently of the past.  The adversary *commits* to
its draws: the same object answers both the executor's ``interaction_at``
queries and the knowledge oracles' ``next_meeting`` queries, so ``meetTime``
and ``future`` are always consistent with the interactions the executor
replays.

Draws are committed in fixed-size numpy batches (``draw_block``) instead of
one ``randrange`` pair at a time, so the committed future for a given
``(nodes, seed)`` is a pure function of the seed: it does not depend on the
query pattern (single ``interaction_at`` calls, block extensions from
``next_meeting``, parallel workers re-deriving the same trial) — a property
the fast execution engine and the parallel sweep runner rely on.  The
committed-block machinery itself lives in
:class:`~repro.adversaries.committed.CommittedBlockAdversary` and is shared
with the non-uniform and mobility adversary families.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.data import NodeId
from .committed import COMMIT_CHUNK, CommittedBlockAdversary

__all__ = ["COMMIT_CHUNK", "RandomizedAdversary"]


class RandomizedAdversary(CommittedBlockAdversary):
    """Uniformly random pairwise interactions with a lazily committed future.

    Args:
        nodes: the node set (must contain at least two nodes).
        seed: RNG seed; two adversaries with the same node order and seed
            commit to the same sequence, in any process.
        max_horizon: safety cap on how far the committed future may be
            extended by oracle queries (``next_meeting`` returns None beyond
            it).  The executor's own horizon is handled separately through
            ``max_interactions``.
    """

    family = "randomized"

    def __init__(
        self,
        nodes: Sequence[NodeId],
        seed: Optional[int] = None,
        max_horizon: int = 10_000_000,
    ) -> None:
        super().__init__(nodes, max_horizon=max_horizon)
        self._rng = np.random.Generator(np.random.PCG64(seed))

    def _sample_block(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``k`` uniform pairs, vectorised.

        Each pair is drawn with the classic two-step scheme (uniform ``i``,
        uniform ``j`` among the remaining ``n - 1`` indices), vectorised over
        the whole block, so the per-pair distribution is exactly uniform over
        the ``n(n-1)/2`` unordered pairs.
        """
        n = len(self._nodes)
        i = self._rng.integers(0, n, size=k)
        j = self._rng.integers(0, n - 1, size=k)
        j = np.where(j >= i, j + 1, j)
        return i, j

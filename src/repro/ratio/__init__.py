"""Competitive-ratio subsystem: vectorized offline-optimum baselines.

The paper's headline metric is not an algorithm's raw termination time but
its cost *relative to successive convergecasts performed by an offline
optimum that knows the whole interaction sequence* (``opt(t)``, Section
2.3; the broadcast/convergecast duality of Theorem 8).  This package makes
that baseline cheap enough to attach to every Monte-Carlo trial:

* :mod:`repro.ratio.kernels` — trial-vectorized offline-optimum kernels:
  foremost arrival times, ``opt(t)`` and successive-convergecast end times
  for a whole ``(B, L)`` cell of committed futures as numpy array ops,
  consuming the same dense index matrices the trial-vectorized engine does
  (:meth:`~repro.adversaries.committed.CommittedBlockAdversary.
  committed_index_matrix`);
* :mod:`repro.ratio.semantics` — the scalar vocabulary: ``opt_cost``
  (offline-optimal duration in interactions), ``competitive_ratio`` and
  the documented sentinel values (:data:`~repro.ratio.semantics.
  UNREACHABLE`, :data:`~repro.ratio.semantics.RATIO_UNDEFINED`).

Invariants:

* **Differential equality** — every kernel is sequence-for-sequence equal
  to the pure-Python oracle in :mod:`repro.offline.convergecast`
  (``tests/test_ratio_kernels.py``); engines may therefore mix the two
  freely (the reference engine captures through the oracle, the optimized
  engines through the kernels) and still produce byte-identical metrics.
* **Ratio lower bound** — a terminated online run can never beat the
  offline optimum, so ``competitive_ratio >= 1`` exactly whenever it is
  finite (``tests/test_property_invariants.py``).
* **Zero extra adversary draws** — kernels only ever read the committed
  prefix a trial already consumed; capturing the baseline never extends a
  committed future.
"""

from .kernels import (
    foremost_arrival_matrix,
    opt_end_matrix,
    sequence_index_blocks,
    successive_convergecast_end_matrix,
)
from .semantics import (
    RATIO_UNDEFINED,
    UNREACHABLE,
    competitive_ratio,
    opt_cost_from_end,
)

__all__ = [
    "RATIO_UNDEFINED",
    "UNREACHABLE",
    "competitive_ratio",
    "foremost_arrival_matrix",
    "opt_cost_from_end",
    "opt_end_matrix",
    "sequence_index_blocks",
    "successive_convergecast_end_matrix",
]

"""Trial-vectorized offline-optimum kernels.

The pure-Python oracle (:mod:`repro.offline.convergecast`) computes foremost
arrival times with a single backward sweep over one sequence.  The sweep is
inherently sequential in *time* — arrival times at later interactions feed
relaxations at earlier ones — but perfectly parallel across *trials*: every
row of a sweep cell is swept independently.  These kernels exploit exactly
that: one Python-level loop over the shared time axis, numpy array ops of
width ``B`` per step, consuming the same dense ``(B, L)`` committed index
matrices the trial-vectorized engine consumes
(:meth:`~repro.adversaries.committed.CommittedBlockAdversary.
committed_index_matrix`).

All kernels are differential-equal to the oracle sequence for sequence
(``tests/test_ratio_kernels.py``) and all returned times are float64 —
exact for any realistic horizon (``< 2**53``) — so downstream metrics are
byte-identical no matter which implementation produced them.

Row conventions (shared with ``committed_index_matrix``):

* ``I[b, t]`` / ``J[b, t]`` are dense node indices of row ``b``'s committed
  interaction at time ``t``; entries at ``t >= lengths[b]`` are padding and
  are never read into a result;
* a row's window is ``[starts[b], lengths[b])``; nodes unreachable within
  it get :data:`~repro.ratio.semantics.UNREACHABLE`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from .semantics import UNREACHABLE

__all__ = [
    "foremost_arrival_matrix",
    "opt_end_matrix",
    "sequence_index_blocks",
    "successive_convergecast_end_matrix",
]

StartSpec = Union[int, np.ndarray]

#: Time-axis chunk of the backward sweep: bounds the precomputed per-chunk
#: index structures to ~chunk × 2B × 18 bytes regardless of window length.
_TIME_CHUNK = 32768


def _as_matrix(values: np.ndarray) -> np.ndarray:
    matrix = np.asarray(values, dtype=np.int64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a (B, L) matrix, got shape {matrix.shape}")
    return matrix


def _starts_vector(starts: StartSpec, batch: int) -> np.ndarray:
    vector = np.broadcast_to(np.asarray(starts, dtype=np.int64), (batch,))
    return vector


def foremost_arrival_matrix(
    i_nodes: np.ndarray,
    j_nodes: np.ndarray,
    lengths: np.ndarray,
    n: int,
    sink: int,
    starts: StartSpec = 0,
) -> np.ndarray:
    """Foremost arrival times at the sink for a whole cell of sequences.

    The vectorized counterpart of :func:`repro.offline.convergecast.
    foremost_arrival_times`: ``result[b, u]`` is the earliest time a
    time-respecting journey starting at or after ``starts[b]`` brings node
    ``u``'s data to the sink using row ``b``'s committed interactions, or
    :data:`~repro.ratio.semantics.UNREACHABLE` when no such journey exists
    within the row's window.  ``result[b, sink] = starts[b] - 1`` by the
    oracle's convention.

    Args:
        i_nodes, j_nodes: ``(B, L)`` dense ``I``/``J`` node-index matrices
            (padding beyond a row's length is ignored; any in-range value
            is acceptable padding).
        lengths: per-row committed lengths, shape ``(B,)``.
        n: number of nodes (dense indices ``0..n-1``).
        sink: dense sink index.
        starts: shared start time, or one per row (shape ``(B,)``).

    Returns:
        ``(B, n)`` float64 arrival-time matrix.
    """
    i_nodes = _as_matrix(i_nodes)
    j_nodes = _as_matrix(j_nodes)
    batch, width = i_nodes.shape
    if j_nodes.shape != i_nodes.shape:
        raise ValueError(
            f"I/J shape mismatch: {i_nodes.shape} vs {j_nodes.shape}"
        )
    lengths = np.asarray(lengths, dtype=np.int64)
    starts = _starts_vector(starts, batch)
    if batch == 0 or n == 0:
        return np.full((batch, n), UNREACHABLE, dtype=np.float64)
    # Arrival lives as one flat (B*n + 1) vector so every per-step access
    # is a single fancy gather/scatter on precomputed flat indices.  The
    # extra trailing slot holds -inf and serves as a write sink: node-side
    # indices of positions that must never relax (the sink's own arrival,
    # padding beyond a row's length, times before a row's start) are
    # redirected there during precomputation, which keeps the hot loop down
    # to a handful of numpy ops per time step — the per-step op count, not
    # the array width, dominates at realistic batch sizes.
    flat = np.full(batch * n + 1, UNREACHABLE, dtype=np.float64)
    offsets = np.arange(batch, dtype=np.int64) * n
    flat[offsets + sink] = starts - 1
    dummy = batch * n
    flat[dummy] = -np.inf
    last = min(width, int(lengths.max()))
    first = max(int(starts.min()), 0)
    if last <= first:
        arrival = flat[:dummy].reshape(batch, n)
        return arrival.copy()
    # The time axis is processed in chunks (newest first) so the
    # precomputed per-chunk index structures stay memory-bounded even for
    # horizon-length windows; within a chunk the sweep runs newest-to-
    # oldest exactly like the oracle.
    for chunk_end in range(last, first, -_TIME_CHUNK):
        chunk_start = max(first, chunk_end - _TIME_CHUNK)
        span = slice(chunk_start, chunk_end)
        it = np.ascontiguousarray(i_nodes.T[span])  # (T, B) time-major
        jt = np.ascontiguousarray(j_nodes.T[span])
        steps = chunk_end - chunk_start
        times = np.arange(chunk_start, chunk_end, dtype=np.int64)
        # Node-side flat indices (where a relaxation would write) and
        # peer-side flat indices (whose arrival the journey continues
        # through), both (T, 2B): the u-direction and v-direction of every
        # interaction are processed as one fused vector per step.
        node_index = np.empty((steps, 2 * batch), dtype=np.int64)
        node_index[:, :batch] = it + offsets
        node_index[:, batch:] = jt + offsets
        peer_index = np.empty((steps, 2 * batch), dtype=np.int64)
        peer_index[:, :batch] = jt + offsets
        peer_index[:, batch:] = it + offsets
        peer_is_sink = np.empty((steps, 2 * batch), dtype=bool)
        peer_is_sink[:, :batch] = jt == sink
        peer_is_sink[:, batch:] = it == sink
        blocked = np.empty((steps, 2 * batch), dtype=bool)
        blocked[:, :batch] = it == sink
        blocked[:, batch:] = jt == sink
        dead = (times[:, None] >= lengths[None, :]) | (
            times[:, None] < starts[None, :]
        )
        blocked[:, :batch] |= dead
        blocked[:, batch:] |= dead
        node_index[blocked] = dummy
        for step in range(steps - 1, -1, -1):
            time = times[step]
            peer_arrival = flat[peer_index[step]]
            # Candidate arrival through the peer: the journey completes
            # now when the peer is the sink, otherwise it continues through
            # the peer's strictly-later foremost arrival.
            candidate = np.where(
                peer_arrival > time, peer_arrival, UNREACHABLE
            )
            candidate[peer_is_sink[step]] = time
            node_slot = node_index[step]
            improves = candidate < flat[node_slot]
            if improves.any():
                flat[node_slot[improves]] = candidate[improves]
    arrival = flat[:dummy].reshape(batch, n)
    return arrival.copy()


def opt_end_matrix(
    i_nodes: np.ndarray,
    j_nodes: np.ndarray,
    lengths: np.ndarray,
    n: int,
    sink: int,
    starts: StartSpec = 0,
) -> np.ndarray:
    """The paper's ``opt(start)`` per row: optimal convergecast end times.

    Vectorized counterpart of :func:`repro.offline.convergecast.opt`:
    ``result[b]`` is the ending time of an optimal offline convergecast on
    row ``b`` starting at ``starts[b]``, or
    :data:`~repro.ratio.semantics.UNREACHABLE` when none completes within
    the row's window.  Returns a ``(B,)`` float64 vector.
    """
    i_nodes = _as_matrix(i_nodes)
    batch = i_nodes.shape[0]
    starts = _starts_vector(starts, batch)
    if n <= 1:
        # Degenerate single-node instances: nothing to aggregate (oracle
        # convention: the convergecast is already complete).
        return np.maximum(starts - 1, 0).astype(np.float64)
    arrival = foremost_arrival_matrix(i_nodes, j_nodes, lengths, n, sink, starts=starts)
    non_sink = np.ones(n, dtype=bool)
    non_sink[sink] = False
    return arrival[:, non_sink].max(axis=1)


def successive_convergecast_end_matrix(
    i_nodes: np.ndarray,
    j_nodes: np.ndarray,
    lengths: np.ndarray,
    n: int,
    sink: int,
    count: int,
    starts: StartSpec = 0,
) -> np.ndarray:
    """End times ``T(1) .. T(count)`` of successive convergecasts, per row.

    Vectorized counterpart of :func:`repro.offline.convergecast.
    successive_convergecasts` with a fixed ``count``: ``result[b, i-1]`` is
    the paper's ``T(i)`` for row ``b`` (``T(1) = opt(starts[b])``,
    ``T(i+1) = opt(T(i) + 1)``).  Once a row's convergecasts stop fitting
    in its window, every later entry is
    :data:`~repro.ratio.semantics.UNREACHABLE` — the same sentinel the
    oracle stops listing at.

    Returns a ``(B, count)`` float64 matrix.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    i_nodes = _as_matrix(i_nodes)
    j_nodes = _as_matrix(j_nodes)
    batch, width = i_nodes.shape
    lengths = np.asarray(lengths, dtype=np.int64)
    starts = _starts_vector(starts, batch).copy()
    ends = np.full((batch, count), UNREACHABLE, dtype=np.float64)
    active = np.ones(batch, dtype=bool)
    for round_index in range(count):
        if not active.any():
            break
        # Inactive rows sweep an empty window (start beyond the row), so
        # one matrix call serves every row each round.
        round_starts = np.where(active, starts, width)
        round_ends = opt_end_matrix(
            i_nodes, j_nodes, lengths, n, sink, starts=round_starts
        )
        ends[active, round_index] = round_ends[active]
        finite = np.isfinite(round_ends) & active
        # Guard against degenerate instances where opt() cannot advance the
        # start (e.g. n <= 1): stop instead of looping on the same window.
        progressed = finite & (round_ends + 1 > starts)
        active = progressed
        safe_ends = np.where(finite, round_ends, 0).astype(np.int64)
        starts = np.where(progressed, safe_ends + 1, starts)
    return ends


def sequence_index_blocks(
    sequence, index_of: Dict, length: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense node-index arrays for a finite interaction sequence prefix.

    Adapts an :class:`~repro.core.interaction.InteractionSequence` to the
    kernels' input shape, mirroring how the executors map node identifiers
    to dense indices (``index_of``).  Returns ``(i, j)`` int64 arrays of
    the first ``length`` interactions (the whole sequence by default).

    Raises:
        KeyError: if the prefix mentions a node outside ``index_of``.
    """
    limit = len(sequence) if length is None else min(length, len(sequence))
    i = np.fromiter(
        (index_of[sequence[k].u] for k in range(limit)),
        dtype=np.int64,
        count=limit,
    )
    j = np.fromiter(
        (index_of[sequence[k].v] for k in range(limit)),
        dtype=np.int64,
        count=limit,
    )
    return i, j

"""Scalar vocabulary of the competitive-ratio metric.

One module owns the definitions so that engines, metrics, the store and the
report layer can never disagree on them:

* ``opt_cost`` — the offline optimum's *duration* on the committed window a
  trial consumed, counted in interactions: ``opt(0) + 1`` (the optimal
  schedule's last transmission happens at time ``opt(0)``).  When no offline
  convergecast completes within the window the value is the documented
  sentinel :data:`UNREACHABLE` (``math.inf``).
* ``competitive_ratio`` — ``duration / opt_cost`` with the conventions:

  ========================  ==========================  =================
  online ``duration``       offline ``opt_cost``        ratio
  ========================  ==========================  =================
  finite                    finite                      ``>= 1`` exactly
  ``inf`` (no termination)  finite                      ``math.inf``
  any                       ``inf`` (:data:`UNREACHABLE`)  :data:`RATIO_UNDEFINED`
  ========================  ==========================  =================

  The ``>= 1`` lower bound is exact (not merely within tolerance): a
  terminated run's last transmission at ``duration - 1`` can never precede
  ``opt(0)``, hence ``duration >= opt_cost``.

JSON serialisation note: stores persist ``opt_cost`` with ``None`` standing
for :data:`UNREACHABLE` (JSON has no ``inf``) and *recompute* the ratio
from ``(duration, opt_cost)`` on load via :func:`competitive_ratio`, so a
round trip can never drift from these definitions.
"""

from __future__ import annotations

import math

__all__ = [
    "RATIO_UNDEFINED",
    "UNREACHABLE",
    "competitive_ratio",
    "opt_cost_from_end",
]

#: Sentinel for "the offline optimum cannot complete within the window"
#: (the paper's ``opt(t) = ∞``) — finite traces and disconnected tails.
UNREACHABLE = math.inf

#: Sentinel ratio when the offline baseline itself is :data:`UNREACHABLE`:
#: there is nothing to be relative to, so the ratio is undefined (NaN),
#: never silently 1.0 or inf.
RATIO_UNDEFINED = math.nan


def opt_cost_from_end(opt_end: float) -> float:
    """Offline-optimal *duration* (in interactions) from an ``opt(0)`` end time.

    ``opt_end`` is an ending time (index of the optimum's last
    transmission); durations count interactions, so the cost is
    ``opt_end + 1``.  :data:`UNREACHABLE` passes through unchanged.
    Always returns a float so the value is byte-identical no matter which
    implementation (pure-Python oracle or numpy kernel) produced the end
    time.
    """
    if math.isinf(opt_end):
        return UNREACHABLE
    return float(opt_end) + 1.0


def competitive_ratio(duration: float, opt_cost: float) -> float:
    """The per-trial competitive ratio under the documented conventions.

    Args:
        duration: the online algorithm's duration in interactions
            (``math.inf`` when the trial did not terminate).
        opt_cost: the offline baseline's duration
            (:func:`opt_cost_from_end`; :data:`UNREACHABLE` when no offline
            convergecast completes in the window).
    """
    if math.isinf(opt_cost):
        return RATIO_UNDEFINED
    if math.isinf(duration):
        return math.inf
    if opt_cost <= 0:
        # Degenerate instantly-complete instances (single-node): both the
        # online run and the offline optimum finish before consuming any
        # interaction, so the run is trivially optimal.
        return 1.0 if duration <= 0 else math.inf
    return float(duration) / float(opt_cost)

"""Seeded elitist local search for high-competitive-ratio schedules.

One search run hunts the worst committed schedule it can find for one
``algorithm × family`` pair at one ``n``, under a fixed evaluation budget:

1. Materialize ``initial_samples`` independent family draws (seeds derived
   from the master seed via :func:`repro.sim.seeding.derive_seed`).
2. Score the whole batch in **one engine invocation** — every candidate
   becomes a :class:`~repro.adversaries.mobility.TraceReplayAdversary`
   (via the dense-index fast path) and the batch runs through one
   :class:`~repro.core.vector_execution.VectorizedExecutor` cell with
   ``capture_opt=True``.  Under the vectorized engine a fallback is an
   *error* (:class:`SearchEngineFallbackError`), not a warning: a silently
   downgraded candidate would be scored by a different code path than its
   pool mates.
3. Keep the ``pool_size`` best candidates (elitist), then repeat: each
   generation mutates random pool members through the score-feedback-biased
   operators of :mod:`repro.search.mutations`, scores the children in one
   engine call, and re-selects the pool — one engine call per generation.

Determinism contract: the outcome is a pure function of the
:class:`SearchConfig`.  All randomness flows from ``derive_seed`` streams,
pool selection breaks score ties by insertion order (stable sort), and the
budget is consumed in fixed-size generations — so the same config
reproduces the same best candidate, lineage for lineage, and a *larger*
budget can only improve (never lose) the best ratio found at a smaller one
with the same seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..adversaries.mobility import TraceReplayAdversary
from ..campaign.spec import algorithm_factory_for
from ..core.data import NodeId
from ..core.fast_execution import BatchTrial
from ..obs import current_collector
from ..obs import now as _obs_now
from ..sim.metrics import TrialMetrics
from ..sim.runner import (
    build_knowledge_for_random_run,
    default_horizon,
    resolve_engine,
)
from ..sim.seeding import derive_seed
from .mutations import (
    MutationContext,
    MutationRecord,
    Schedule,
    default_operator_weights,
    invariant_for,
    materialize_base,
    mutate,
)

__all__ = [
    "SearchCandidate",
    "SearchConfig",
    "SearchEngineFallbackError",
    "SearchError",
    "SearchOutcome",
    "run_random_baseline",
    "run_search",
    "score_schedules",
]


class SearchError(ValueError):
    """The search configuration is invalid."""


class SearchEngineFallbackError(RuntimeError):
    """The vectorized engine fell back while scoring a search batch.

    The search requires every candidate of a generation to be scored by the
    same engine path; a fallback means the configuration (algorithm shape,
    knowledge oracle) is not vectorizable and the search must be run with
    ``engine="fast"`` explicitly instead of silently downgrading.
    """


@dataclass(frozen=True)
class SearchConfig:
    """Everything that determines a search run (and hence its outcome)."""

    algorithm: str
    family: str = "uniform"
    n: int = 60
    budget: int = 192
    seed: int = 0
    sink: NodeId = 0
    engine: str = "vectorized"
    pool_size: int = 6
    generation_size: int = 16
    initial_samples: int = 32
    horizon: Optional[int] = None
    tau: Optional[float] = None
    adversary_params: Optional[Mapping[str, Any]] = None
    operator_weights: Optional[Mapping[str, float]] = None

    def validate(self) -> None:
        if self.n < 2:
            raise SearchError("n must be at least 2")
        if not 0 <= int(self.sink) < self.n:
            raise SearchError("sink must be one of the nodes 0..n-1")
        if self.budget < 1:
            raise SearchError("budget must be positive")
        if self.pool_size < 1 or self.generation_size < 1:
            raise SearchError("pool_size and generation_size must be positive")
        if self.initial_samples < 1:
            raise SearchError("initial_samples must be positive")
        if self.horizon is not None and self.horizon < 4:
            raise SearchError("horizon must be at least 4")
        resolve_engine(self.engine)

    def resolved_horizon(self) -> int:
        if self.horizon is not None:
            return int(self.horizon)
        factory = algorithm_factory_for(self.algorithm, tau=self.tau)
        return default_horizon(factory(self.n), self.n)

    def to_json(self) -> Dict[str, Any]:
        """Deterministic JSON echo (stored with every corpus instance)."""
        return {
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "budget": self.budget,
            "seed": self.seed,
            "sink": int(self.sink),
            "engine": self.engine,
            "pool_size": self.pool_size,
            "generation_size": self.generation_size,
            "initial_samples": self.initial_samples,
            "horizon": self.resolved_horizon(),
            "tau": self.tau,
            "adversary_params": (
                dict(self.adversary_params) if self.adversary_params else {}
            ),
        }


@dataclass(frozen=True)
class SearchCandidate:
    """One scored schedule: where it came from and what it cost."""

    schedule: Schedule
    base_seed: int
    lineage: Tuple[MutationRecord, ...]
    metrics: TrialMetrics

    @property
    def score(self) -> float:
        """Finite competitive ratio, or ``-inf`` (non-terminated / undefined)."""
        ratio = self.metrics.competitive_ratio
        if ratio is None or not math.isfinite(ratio):
            return float("-inf")
        return float(ratio)


@dataclass
class SearchOutcome:
    """The result of one search run (deterministic per config)."""

    config: SearchConfig
    best: SearchCandidate
    pool: List[SearchCandidate]
    evaluations: int
    history: List[float] = field(default_factory=list)

    @property
    def best_ratio(self) -> float:
        return self.best.score


def _build_trial(
    config: SearchConfig,
    schedule: Schedule,
    nodes: Sequence[NodeId],
    horizon: int,
) -> BatchTrial:
    factory = algorithm_factory_for(config.algorithm, tau=config.tau)
    algorithm = factory(config.n)
    adversary = TraceReplayAdversary.from_dense_indices(
        schedule.i, schedule.j, nodes, max_horizon=horizon
    )
    knowledge, committed = build_knowledge_for_random_run(
        algorithm, adversary, nodes, config.sink, horizon
    )
    source = committed if committed is not None else adversary
    return BatchTrial(
        source=source,
        max_interactions=horizon,
        algorithm=algorithm,
        knowledge=knowledge,
    )


def score_schedules(
    config: SearchConfig,
    schedules: Sequence[Schedule],
    seeds: Sequence[int],
) -> List[TrialMetrics]:
    """Score a candidate batch in one engine invocation (``capture_opt=True``).

    ``seeds`` are bookkeeping only (recorded in the metrics so corpus
    instances know their provenance); the schedules are already fully
    materialized, so no randomness is consumed here.

    Raises:
        SearchEngineFallbackError: if the vectorized engine fell back for
            any candidate of the batch.
    """
    if len(schedules) != len(seeds):
        raise SearchError("schedules and seeds must align")
    config.validate()
    horizon = config.resolved_horizon()
    nodes = list(range(config.n))
    executor_cls = resolve_engine(config.engine)
    trials = [
        _build_trial(config, schedule, nodes, horizon) for schedule in schedules
    ]
    if hasattr(executor_cls, "run_many"):
        executor = executor_cls(
            nodes,
            config.sink,
            trials[0].algorithm,
            knowledge=trials[0].knowledge,
            capture_opt=True,
        )
        results = executor.run_many(trials)
        fallbacks = getattr(executor, "last_fallbacks", ())
        if fallbacks and config.engine == "vectorized":
            reasons = sorted({record.reason for record in fallbacks})
            raise SearchEngineFallbackError(
                f"vectorized engine fell back for {len(fallbacks)} of "
                f"{len(trials)} search candidates: {'; '.join(reasons)}"
            )
    else:
        results = [
            executor_cls(
                nodes,
                config.sink,
                trial.algorithm,
                knowledge=trial.knowledge,
                capture_opt=True,
            ).run(trial.source, max_interactions=trial.max_interactions)
            for trial in trials
        ]
    algorithm_name = trials[0].algorithm.name
    return [
        TrialMetrics.from_result(
            result,
            n=config.n,
            seed=int(seed),
            algorithm=algorithm_name,
            horizon=horizon,
        )
        for result, seed in zip(results, seeds)
    ]


def _select_pool(
    candidates: Sequence[SearchCandidate], pool_size: int
) -> List[SearchCandidate]:
    # Stable sort: ties keep insertion order, so selection is deterministic.
    ranked = sorted(
        range(len(candidates)), key=lambda k: (-candidates[k].score, k)
    )
    return [candidates[k] for k in ranked[:pool_size]]


def _duration_slots(metrics: TrialMetrics) -> Optional[int]:
    if not metrics.terminated or not math.isfinite(metrics.duration):
        return None
    return int(metrics.duration)


def run_search(config: SearchConfig) -> SearchOutcome:
    """Run one full search (see module docstring for the algorithm).

    Deterministic per config; one engine invocation per generation.
    """
    config.validate()
    horizon = config.resolved_horizon()
    params = dict(config.adversary_params) if config.adversary_params else None
    invariant = invariant_for(config.family, config.n, horizon, params)
    weights = (
        dict(config.operator_weights)
        if config.operator_weights is not None
        else default_operator_weights()
    )
    rng = np.random.Generator(
        np.random.PCG64(
            derive_seed(
                config.seed,
                "adversarial-search",
                config.algorithm,
                config.family,
                config.n,
            )
        )
    )

    initial = min(config.initial_samples, config.budget)
    base_seeds = [
        derive_seed(
            config.seed,
            "search-base",
            config.algorithm,
            config.family,
            config.n,
            k,
        )
        for k in range(initial)
    ]
    schedules = [
        materialize_base(
            config.family, config.n, base_seed, horizon, config.sink, params
        )
        for base_seed in base_seeds
    ]
    collector = current_collector()
    tracing = collector.enabled
    search_started = _obs_now() if tracing else 0.0

    metrics = score_schedules(config, schedules, base_seeds)
    candidates = [
        SearchCandidate(schedule=s, base_seed=seed, lineage=(), metrics=m)
        for s, seed, m in zip(schedules, base_seeds, metrics)
    ]
    evaluations = initial
    pool = _select_pool(candidates, config.pool_size)
    history = [pool[0].score]
    generation = 0
    if tracing:
        collector.event(
            "search.generation",
            generation=generation,
            evaluations=evaluations,
            best=float(pool[0].score),
        )

    while evaluations < config.budget:
        generation_started = _obs_now() if tracing else 0.0
        count = min(config.generation_size, config.budget - evaluations)
        children: List[Tuple[Schedule, int, Tuple[MutationRecord, ...]]] = []
        for _ in range(count):
            parent = pool[int(rng.integers(0, len(pool)))]
            donor = pool[int(rng.integers(0, len(pool)))].schedule
            context = MutationContext(
                sink_index=int(config.sink),
                horizon=horizon,
                duration=_duration_slots(parent.metrics),
            )
            child_schedule, record = mutate(
                parent.schedule,
                rng,
                context,
                invariant,
                donor=donor,
                weights=weights,
            )
            children.append(
                (child_schedule, parent.base_seed, parent.lineage + (record,))
            )
        child_metrics = score_schedules(
            config,
            [schedule for schedule, _, _ in children],
            [base_seed for _, base_seed, _ in children],
        )
        evaluations += count
        candidates = list(pool) + [
            SearchCandidate(
                schedule=schedule,
                base_seed=base_seed,
                lineage=lineage,
                metrics=m,
            )
            for (schedule, base_seed, lineage), m in zip(children, child_metrics)
        ]
        pool = _select_pool(candidates, config.pool_size)
        history.append(pool[0].score)
        generation += 1
        if tracing:
            generation_end = _obs_now()
            generation_seconds = generation_end - generation_started
            collector.add_span(
                "search.generation",
                generation_started,
                generation_end,
                generation=generation,
                evaluations=count,
                best=float(pool[0].score),
                evals_per_second=(
                    count / generation_seconds if generation_seconds > 0 else 0.0
                ),
            )

    if tracing:
        collector.add_span(
            "search.run",
            search_started,
            _obs_now(),
            algorithm=config.algorithm,
            family=config.family,
            n=config.n,
            evaluations=evaluations,
            generations=generation,
            best=float(pool[0].score),
        )

    return SearchOutcome(
        config=config,
        best=pool[0],
        pool=pool,
        evaluations=evaluations,
        history=history,
    )


def run_random_baseline(config: SearchConfig) -> List[TrialMetrics]:
    """Score ``budget`` independent family draws (the search's null model).

    Seeds come from a stream disjoint from the search's own
    (``"search-random"`` vs ``"search-base"``), so experiment E26's
    comparison is between genuinely independent samples — the search's
    initial population is not part of the baseline.  Scored in
    ``generation_size`` chunks to bound the vectorized engine's cell memory.
    """
    config.validate()
    horizon = config.resolved_horizon()
    params = dict(config.adversary_params) if config.adversary_params else None
    seeds = [
        derive_seed(
            config.seed,
            "search-random",
            config.algorithm,
            config.family,
            config.n,
            k,
        )
        for k in range(config.budget)
    ]
    metrics: List[TrialMetrics] = []
    chunk = max(config.generation_size, 1)
    for start in range(0, len(seeds), chunk):
        chunk_seeds = seeds[start : start + chunk]
        schedules = [
            materialize_base(
                config.family, config.n, seed, horizon, config.sink, params
            )
            for seed in chunk_seeds
        ]
        metrics.extend(score_schedules(config, schedules, chunk_seeds))
    return metrics


def shrink_config(config: SearchConfig, budget: int) -> SearchConfig:
    """A copy of ``config`` with a smaller budget (helper for smokes)."""
    return replace(config, budget=budget)

"""Adversarial worst-case search over committed interaction schedules.

The paper's competitive-ratio results are worst-case statements, but the
repo's adversary families are random generators — sampling them explores
average cases.  This package *hunts* the worst case: :mod:`.mutations`
defines family-invariant-preserving edit operators on materialized
committed schedules, :mod:`.loop` runs a deterministic seeded elitist
search that scores each generation in one vectorized engine call, and
:mod:`.corpus` freezes the hardest finds into a content-addressed store
whose every instance replays its competitive ratio bit-for-bit on all
three engines (experiment E26, ``docs/search.md``).
"""

from .corpus import (
    WorstCaseCorpus,
    WorstCaseCorpusError,
    WorstCaseInstance,
    instance_from_candidate,
    replay_instance,
)
from .loop import (
    SearchCandidate,
    SearchConfig,
    SearchEngineFallbackError,
    SearchError,
    SearchOutcome,
    run_random_baseline,
    run_search,
    score_schedules,
)
from .mutations import (
    FamilyInvariant,
    MutationContext,
    MutationError,
    MutationInvariantError,
    MutationRecord,
    OPERATORS,
    Schedule,
    apply_mutation,
    default_operator_weights,
    invariant_for,
    materialize_base,
    mutate,
    propose_mutation,
)

__all__ = [
    "FamilyInvariant",
    "MutationContext",
    "MutationError",
    "MutationInvariantError",
    "MutationRecord",
    "OPERATORS",
    "Schedule",
    "SearchCandidate",
    "SearchConfig",
    "SearchEngineFallbackError",
    "SearchError",
    "SearchOutcome",
    "WorstCaseCorpus",
    "WorstCaseCorpusError",
    "WorstCaseInstance",
    "apply_mutation",
    "default_operator_weights",
    "instance_from_candidate",
    "invariant_for",
    "materialize_base",
    "mutate",
    "propose_mutation",
    "replay_instance",
    "run_random_baseline",
    "run_search",
    "score_schedules",
]

"""Family-constraint-preserving mutation operators on committed schedules.

The adversarial search (:mod:`repro.search.loop`) climbs over *materialized*
committed sequences: a schedule here is the whole committed future of one
adversary draw, held as the same dense node-index arrays the batched engines
consume.  Every operator takes a valid schedule and returns a new valid
schedule plus a :class:`MutationRecord` — a concrete, RNG-free description
of the edit (the exact positions, endpoints and, for splice, the donor pairs
verbatim).  Replaying a lineage of records through :func:`apply_mutation`
reproduces the mutated schedule bit-for-bit with no random state at all,
which is what lets the worst-case corpus store lineages instead of arrays
when it wants to explain a find.

Validity is machine-checked, not assumed: :class:`FamilyInvariant` knows the
constraints a family places on its committed sequences (length preservation,
index bounds, no self-interactions, and the family's pair support) and
:meth:`FamilyInvariant.verify` raises on any violation.  :func:`mutate`
verifies every schedule it emits, so an operator bug cannot leak an
out-of-family schedule into the search pool — the proof hook the search
loop and the property tests share.

Operator catalogue (all length-preserving):

* ``swap`` — exchange the meetings at two time slots.
* ``delay`` — move one meeting to a later slot, shifting the window between
  them one step earlier.  Proposals are biased toward the last few
  sink-involving meetings before the parent's scored duration: delaying the
  meeting that completed the run is the single most effective way to grow
  the competitive ratio while leaving the offline optimum's early prefix
  untouched.
* ``advance`` — move one meeting to an earlier slot (the mirror image;
  proposals pull random meetings into the early window to perturb the
  offline optimum).
* ``retarget`` — rewrite one endpoint of one meeting to a different node.
* ``splice`` — overwrite a window with the same window of a donor schedule
  (another pool member), recombining two independent draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.data import NodeId
from ..core.interaction import InteractionSequence

__all__ = [
    "ADVANCE_WINDOW",
    "FamilyInvariant",
    "MutationContext",
    "MutationError",
    "MutationInvariantError",
    "MutationRecord",
    "OPERATORS",
    "Schedule",
    "apply_mutation",
    "default_operator_weights",
    "invariant_for",
    "materialize_base",
    "mutate",
    "propose_mutation",
]

#: Early-window width (in interaction slots) that ``advance`` proposals
#: target — meetings pulled before this point perturb the offline optimum's
#: convergecast prefix.
ADVANCE_WINDOW = 500

#: Tail width (in sink-involving meetings) that ``delay`` proposals sample
#: from, counted backwards from the parent's scored duration.
_DELAY_TAIL = 3

#: Splice window bounds (in interaction slots).
_SPLICE_MIN = 64
_SPLICE_MAX = 1024

OPERATORS = ("swap", "delay", "advance", "retarget", "splice")


class MutationError(ValueError):
    """A mutation could not be proposed or applied."""


class MutationInvariantError(MutationError):
    """A schedule violates its family invariant (the proof hook fired)."""


@dataclass(frozen=True)
class Schedule:
    """One materialized committed sequence as dense node-index arrays.

    ``i``/``j`` are positions into ``range(n)`` (the search always works on
    the canonical dense node set), one entry per interaction slot.  The
    arrays are never mutated in place — operators copy.
    """

    i: np.ndarray
    j: np.ndarray
    n: int

    @property
    def length(self) -> int:
        return int(self.i.shape[0])

    def to_sequence(self) -> InteractionSequence:
        """The schedule as an :class:`InteractionSequence` over ``range(n)``."""
        pairs = list(zip(self.i.tolist(), self.j.tolist()))
        return InteractionSequence.from_pairs(pairs)

    def digest_key(self) -> Tuple[bytes, bytes]:
        """Hashable content key (used for determinism tests, not identity)."""
        return (self.i.tobytes(), self.j.tobytes())


@dataclass(frozen=True)
class MutationContext:
    """Score feedback that biases operator proposals.

    ``duration`` is the parent candidate's scored termination time (``None``
    when the parent did not terminate); ``sink_index`` is the sink's dense
    index.  Proposals only *read* the context — the emitted record is
    concrete, so replay needs neither the context nor the RNG.
    """

    sink_index: int
    horizon: int
    duration: Optional[int] = None


@dataclass(frozen=True)
class MutationRecord:
    """A concrete, RNG-free description of one applied mutation.

    ``params`` holds only JSON-serialisable scalars and lists (splice stores
    the donor window's pairs verbatim), so a lineage round-trips through the
    corpus store and replays deterministically via :func:`apply_mutation`.
    """

    op: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {"op": self.op, "params": dict(self.params)}

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "MutationRecord":
        return cls(op=str(payload["op"]), params=dict(payload["params"]))


class FamilyInvariant:
    """Machine-checkable invariants of one adversary family's schedules.

    Every committed family in the repo draws independent contacts whose
    support is *all ordered pairs of distinct nodes* (community adversaries
    keep a nonzero inter-community contact probability unless configured
    with ``p_intra >= 1``, which :func:`invariant_for` rejects because its
    support would depend on the seed-specific community draw).  The
    invariant therefore checks structure, not distribution: length
    preservation, dtype, index bounds and distinctness.
    """

    def __init__(self, family: str, n: int, horizon: int) -> None:
        self.family = family
        self.n = int(n)
        self.horizon = int(horizon)

    def check(self, schedule: Schedule) -> List[str]:
        """All invariant violations of ``schedule`` (empty list = valid)."""
        violations: List[str] = []
        i, j = schedule.i, schedule.j
        if i.ndim != 1 or j.ndim != 1:
            violations.append("index arrays must be one-dimensional")
            return violations
        if i.dtype != np.int64 or j.dtype != np.int64:
            violations.append(
                f"index arrays must be int64, got {i.dtype}/{j.dtype}"
            )
        if i.shape[0] != j.shape[0]:
            violations.append(
                f"index arrays disagree on length: {i.shape[0]} vs {j.shape[0]}"
            )
            return violations
        if schedule.n != self.n:
            violations.append(
                f"schedule is over {schedule.n} nodes, family expects {self.n}"
            )
        if i.shape[0] != self.horizon:
            violations.append(
                f"mutations are length-preserving: expected {self.horizon} "
                f"slots, got {i.shape[0]}"
            )
        if i.size:
            low = min(int(i.min()), int(j.min()))
            high = max(int(i.max()), int(j.max()))
            if low < 0 or high >= self.n:
                violations.append(
                    f"indices must lie in [0, {self.n}), found [{low}, {high}]"
                )
            if bool(np.any(i == j)):
                where = int(np.flatnonzero(i == j)[0])
                violations.append(f"self-interaction at slot {where}")
        return violations

    def verify(self, schedule: Schedule) -> None:
        """Raise :class:`MutationInvariantError` unless ``schedule`` is valid."""
        violations = self.check(schedule)
        if violations:
            raise MutationInvariantError(
                f"family {self.family!r} invariant violated: "
                + "; ".join(violations)
            )


def invariant_for(
    family: str,
    n: int,
    horizon: int,
    params: Optional[Mapping[str, Any]] = None,
) -> FamilyInvariant:
    """The invariant the search enforces for one ``family`` at one size.

    Raises:
        MutationError: for unknown families, or for configurations whose
            pair support is seed-dependent (``community`` with
            ``p_intra >= 1``) and therefore not checkable family-wide.
    """
    from ..adversaries.factory import ADVERSARY_FAMILIES

    if family not in ADVERSARY_FAMILIES:
        raise MutationError(
            f"unknown adversary family {family!r}; "
            f"available: {sorted(ADVERSARY_FAMILIES)}"
        )
    if family == "community":
        p_intra = float((params or {}).get("p_intra", 0.8))
        if p_intra >= 1.0:
            raise MutationError(
                "community with p_intra >= 1 has seed-dependent pair "
                "support (intra-community only); the search requires "
                "families whose support is seed-independent"
            )
    return FamilyInvariant(family, n, horizon)


def materialize_base(
    family: str,
    n: int,
    seed: int,
    horizon: int,
    sink: NodeId = 0,
    params: Optional[Mapping[str, Any]] = None,
) -> Schedule:
    """Materialize one family draw's committed future as a :class:`Schedule`.

    Derives the adversary exactly as the sweep runners do (same family
    factory, same seed semantics), commits ``horizon`` interactions and
    snapshots the dense index buffers.
    """
    from ..adversaries.factory import make_adversary

    nodes = list(range(n))
    adversary = make_adversary(
        family,
        nodes,
        seed,
        max_horizon=horizon,
        sink=sink,
        params=dict(params) if params else None,
    )
    i, j = adversary.committed_index_block(0, horizon)
    return Schedule(i=i.copy(), j=j.copy(), n=n)


# --------------------------------------------------------------------- #
# Pure, RNG-free application of concrete records
# --------------------------------------------------------------------- #
def _apply_swap(i: np.ndarray, j: np.ndarray, a: int, b: int) -> None:
    i[a], i[b] = i[b], i[a]
    j[a], j[b] = j[b], j[a]


def _apply_delay(i: np.ndarray, j: np.ndarray, a: int, b: int) -> None:
    # Move slot a to slot b (a < b), shifting (a, b] one step earlier.
    iv, jv = i[a], j[a]
    i[a:b] = i[a + 1 : b + 1]
    j[a:b] = j[a + 1 : b + 1]
    i[b], j[b] = iv, jv


def _apply_advance(i: np.ndarray, j: np.ndarray, a: int, b: int) -> None:
    # Move slot a to slot b (b < a), shifting [b, a) one step later.
    iv, jv = i[a], j[a]
    i[b + 1 : a + 1] = i[b:a]
    j[b + 1 : a + 1] = j[b:a]
    i[b], j[b] = iv, jv


def apply_mutation(schedule: Schedule, record: MutationRecord) -> Schedule:
    """Apply one concrete record to ``schedule`` — deterministic, RNG-free.

    This is the replay half of every operator: :func:`propose_mutation`
    decides *what* to do (consuming randomness), this function does it.
    Raises :class:`MutationError` on malformed records; it does **not**
    verify family invariants — callers that accept untrusted records go
    through :func:`mutate` or call :meth:`FamilyInvariant.verify` directly.
    """
    length = schedule.length
    i = schedule.i.copy()
    j = schedule.j.copy()
    params = record.params
    op = record.op

    def _pos(name: str) -> int:
        value = int(params[name])
        if not 0 <= value < length:
            raise MutationError(
                f"{op}: {name}={value} out of range [0, {length})"
            )
        return value

    if op == "swap":
        a, b = _pos("a"), _pos("b")
        if a == b:
            raise MutationError("swap: positions must differ")
        _apply_swap(i, j, a, b)
    elif op == "delay":
        a, b = _pos("a"), _pos("b")
        if not a < b:
            raise MutationError(f"delay: need a < b, got a={a}, b={b}")
        _apply_delay(i, j, a, b)
    elif op == "advance":
        a, b = _pos("a"), _pos("b")
        if not b < a:
            raise MutationError(f"advance: need b < a, got a={a}, b={b}")
        _apply_advance(i, j, a, b)
    elif op == "retarget":
        pos = _pos("pos")
        endpoint = str(params["endpoint"])
        value = int(params["value"])
        if endpoint not in ("i", "j"):
            raise MutationError(f"retarget: unknown endpoint {endpoint!r}")
        if not 0 <= value < schedule.n:
            raise MutationError(
                f"retarget: value={value} out of range [0, {schedule.n})"
            )
        other = int(j[pos]) if endpoint == "i" else int(i[pos])
        if value == other:
            raise MutationError("retarget: would create a self-interaction")
        if endpoint == "i":
            i[pos] = value
        else:
            j[pos] = value
    elif op == "splice":
        start = _pos("start")
        donor_i = np.asarray(params["donor_i"], dtype=np.int64)
        donor_j = np.asarray(params["donor_j"], dtype=np.int64)
        if donor_i.shape != donor_j.shape or donor_i.ndim != 1:
            raise MutationError("splice: malformed donor window")
        stop = start + int(donor_i.shape[0])
        if stop > length:
            raise MutationError(
                f"splice: window [{start}, {stop}) exceeds length {length}"
            )
        i[start:stop] = donor_i
        j[start:stop] = donor_j
    else:
        raise MutationError(f"unknown mutation operator {op!r}")
    return Schedule(i=i, j=j, n=schedule.n)


# --------------------------------------------------------------------- #
# Randomized proposals (score-feedback biased)
# --------------------------------------------------------------------- #
def _propose_swap(
    schedule: Schedule, rng: np.random.Generator, context: MutationContext
) -> MutationRecord:
    length = schedule.length
    a = int(rng.integers(0, length))
    b = int(rng.integers(0, length - 1))
    if b >= a:
        b += 1
    return MutationRecord("swap", {"a": min(a, b), "b": max(a, b)})


def _propose_delay(
    schedule: Schedule, rng: np.random.Generator, context: MutationContext
) -> MutationRecord:
    length = schedule.length
    limit = length if context.duration is None else min(int(context.duration), length)
    sink = context.sink_index
    involved = np.flatnonzero(
        (schedule.i[:limit] == sink) | (schedule.j[:limit] == sink)
    )
    # Bias: the completing meeting is one of the last sink-involving slots
    # before the parent's duration — delaying it stretches the run while the
    # early prefix (and hence the offline optimum) stays put.
    if involved.size:
        tail = involved[-_DELAY_TAIL:]
        a = int(tail[int(rng.integers(0, tail.size))])
    else:
        a = int(rng.integers(0, length - 1))
    if a >= length - 1:
        a = length - 2
    b = int(rng.integers(a + 1, length))
    return MutationRecord("delay", {"a": a, "b": b})


def _propose_advance(
    schedule: Schedule, rng: np.random.Generator, context: MutationContext
) -> MutationRecord:
    length = schedule.length
    window = min(ADVANCE_WINDOW, length - 1)
    b = int(rng.integers(0, max(window, 1)))
    a = int(rng.integers(b + 1, length))
    return MutationRecord("advance", {"a": a, "b": b})


def _propose_retarget(
    schedule: Schedule, rng: np.random.Generator, context: MutationContext
) -> MutationRecord:
    length = schedule.length
    if schedule.n < 3:
        raise MutationError("retarget needs at least 3 nodes")
    pos = int(rng.integers(0, length))
    endpoint = "i" if int(rng.integers(0, 2)) == 0 else "j"
    # Exclude both current endpoints so the proposal is never a no-op and
    # never creates a self-interaction.
    low, high = sorted((int(schedule.i[pos]), int(schedule.j[pos])))
    value = int(rng.integers(0, schedule.n - 2))
    if value >= low:
        value += 1
    if value >= high:
        value += 1
    return MutationRecord(
        "retarget", {"pos": pos, "endpoint": endpoint, "value": value}
    )


def _propose_splice(
    schedule: Schedule,
    rng: np.random.Generator,
    context: MutationContext,
    donor: Schedule,
) -> MutationRecord:
    length = schedule.length
    width = int(rng.integers(_SPLICE_MIN, _SPLICE_MAX + 1))
    width = min(width, length)
    start = int(rng.integers(0, length - width + 1))
    return MutationRecord(
        "splice",
        {
            "start": start,
            "donor_i": donor.i[start : start + width].tolist(),
            "donor_j": donor.j[start : start + width].tolist(),
        },
    )


def default_operator_weights() -> Dict[str, float]:
    """The search's default operator mix (delay-heavy; see module docstring)."""
    return {
        "delay": 0.55,
        "advance": 0.15,
        "swap": 0.10,
        "retarget": 0.10,
        "splice": 0.10,
    }


def propose_mutation(
    schedule: Schedule,
    rng: np.random.Generator,
    context: MutationContext,
    donor: Optional[Schedule] = None,
    weights: Optional[Mapping[str, float]] = None,
) -> MutationRecord:
    """Draw one operator (by weight) and propose a concrete record for it.

    ``donor`` supplies the splice source; without one, splice weight is
    redistributed over the remaining operators.  The returned record is
    concrete — replaying it needs no RNG.
    """
    chosen = dict(weights) if weights is not None else default_operator_weights()
    unknown = set(chosen) - set(OPERATORS)
    if unknown:
        raise MutationError(f"unknown operators in weights: {sorted(unknown)}")
    if donor is None:
        chosen.pop("splice", None)
    names = [name for name in OPERATORS if chosen.get(name, 0.0) > 0.0]
    if not names:
        raise MutationError("no operators with positive weight")
    totals = np.cumsum([float(chosen[name]) for name in names])
    draw = float(rng.random()) * float(totals[-1])
    op = names[int(np.searchsorted(totals, draw, side="right").clip(0, len(names) - 1))]
    if op == "swap":
        return _propose_swap(schedule, rng, context)
    if op == "delay":
        return _propose_delay(schedule, rng, context)
    if op == "advance":
        return _propose_advance(schedule, rng, context)
    if op == "retarget":
        return _propose_retarget(schedule, rng, context)
    assert donor is not None
    return _propose_splice(schedule, rng, context, donor)


def mutate(
    schedule: Schedule,
    rng: np.random.Generator,
    context: MutationContext,
    invariant: FamilyInvariant,
    donor: Optional[Schedule] = None,
    weights: Optional[Mapping[str, float]] = None,
) -> Tuple[Schedule, MutationRecord]:
    """Propose, apply and *verify* one mutation.

    The invariant verification is unconditional — the proof hook that no
    operator, however proposed, can emit an out-of-family schedule.
    """
    record = propose_mutation(schedule, rng, context, donor=donor, weights=weights)
    mutated = apply_mutation(schedule, record)
    invariant.verify(mutated)
    return mutated, record

"""Content-addressed worst-case corpus: the search's finds as regression data.

Layout (one directory per corpus)::

    <store>/
        manifest.json               # format, one summary entry per instance
        instances/<digest>.json     # full instance payload, canonical bytes

Invariants (the campaign store's discipline, applied to search finds):

* **Instance files are canonical byte streams.**  An instance's payload is
  serialised with sorted keys and compact separators, carries no
  timestamps, and the file holds exactly the digested bytes — so the
  SHA-256 digest in the manifest is recomputable from the file alone, and
  two searches with the same config produce byte-identical stores.
* **Every instance is self-contained and replayable.**  The payload stores
  the full mutated schedule (dense index arrays), the search config echo,
  the base seed and the mutation lineage, plus the scored metrics.
  :func:`replay_instance` rebuilds the schedule as a
  :class:`~repro.adversaries.mobility.TraceReplayAdversary` and re-runs it
  on any engine; the contract (asserted by experiment E26 and the golden
  corpus tests) is that the stored competitive ratio reproduces
  **bit-for-bit** on all three engines.
* **Writes are atomic** (temp file + ``os.replace``), and adding an
  instance that is already present is a no-op — the digest is the identity.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..sim.metrics import TrialMetrics
from .loop import SearchCandidate, SearchConfig, SearchOutcome, score_schedules
from .mutations import MutationRecord, Schedule

__all__ = [
    "CORPUS_MANIFEST_NAME",
    "WorstCaseCorpus",
    "WorstCaseCorpusError",
    "WorstCaseInstance",
    "instance_from_candidate",
    "replay_instance",
]

CORPUS_MANIFEST_NAME = "manifest.json"
_INSTANCE_DIR = "instances"
_FORMAT = 1


class WorstCaseCorpusError(RuntimeError):
    """The corpus is unreadable, corrupt, or the instance is invalid."""


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


@dataclass(frozen=True)
class WorstCaseInstance:
    """One persisted search find — everything needed to replay it exactly."""

    algorithm: str
    family: str
    n: int
    sink: int
    horizon: int
    search: Dict[str, Any]
    base_seed: int
    lineage: List[Dict[str, Any]]
    schedule_i: List[int]
    schedule_j: List[int]
    metrics: Dict[str, Any]

    @property
    def competitive_ratio(self) -> float:
        return float(self.metrics["competitive_ratio"])

    def to_payload(self) -> Dict[str, Any]:
        return {
            "format": _FORMAT,
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "sink": self.sink,
            "horizon": self.horizon,
            "search": self.search,
            "base_seed": self.base_seed,
            "lineage": self.lineage,
            "schedule": {"i": self.schedule_i, "j": self.schedule_j},
            "metrics": self.metrics,
        }

    def canonical_bytes(self) -> bytes:
        return json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def digest(self) -> str:
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def to_schedule(self) -> Schedule:
        return Schedule(
            i=np.asarray(self.schedule_i, dtype=np.int64),
            j=np.asarray(self.schedule_j, dtype=np.int64),
            n=self.n,
        )

    def mutation_records(self) -> List[MutationRecord]:
        return [MutationRecord.from_json(entry) for entry in self.lineage]

    def to_config(self, engine: Optional[str] = None) -> SearchConfig:
        """The search config this instance was found under.

        ``engine`` overrides the recorded engine (replay runs want to pick
        the engine per call).
        """
        search = self.search
        return SearchConfig(
            algorithm=self.algorithm,
            family=self.family,
            n=self.n,
            budget=int(search["budget"]),
            seed=int(search["seed"]),
            sink=self.sink,
            engine=str(engine if engine is not None else search["engine"]),
            pool_size=int(search["pool_size"]),
            generation_size=int(search["generation_size"]),
            initial_samples=int(search["initial_samples"]),
            horizon=self.horizon,
            tau=search.get("tau"),
            adversary_params=dict(search.get("adversary_params") or {}) or None,
        )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WorstCaseInstance":
        if int(payload.get("format", -1)) != _FORMAT:
            raise WorstCaseCorpusError(
                f"unsupported corpus instance format {payload.get('format')!r}"
            )
        schedule = payload["schedule"]
        return cls(
            algorithm=str(payload["algorithm"]),
            family=str(payload["family"]),
            n=int(payload["n"]),
            sink=int(payload["sink"]),
            horizon=int(payload["horizon"]),
            search=dict(payload["search"]),
            base_seed=int(payload["base_seed"]),
            lineage=[dict(entry) for entry in payload["lineage"]],
            schedule_i=[int(v) for v in schedule["i"]],
            schedule_j=[int(v) for v in schedule["j"]],
            metrics=dict(payload["metrics"]),
        )


def _metrics_payload(metrics: TrialMetrics) -> Dict[str, Any]:
    ratio = metrics.competitive_ratio
    if (
        not metrics.terminated
        or ratio is None
        or not math.isfinite(ratio)
        or metrics.opt_cost is None
        or not math.isfinite(metrics.opt_cost)
    ):
        raise WorstCaseCorpusError(
            "only terminated, finite-ratio candidates belong in the corpus "
            f"(terminated={metrics.terminated}, ratio={ratio})"
        )
    return {
        "competitive_ratio": float(ratio),
        "duration": int(metrics.duration),
        "opt_cost": float(metrics.opt_cost),
        "sink_coverage": float(metrics.sink_coverage),
        "terminated": True,
        "transmissions": int(metrics.transmissions),
    }


def instance_from_candidate(
    config: SearchConfig, candidate: SearchCandidate
) -> WorstCaseInstance:
    """Freeze one scored candidate into a self-contained corpus instance."""
    return WorstCaseInstance(
        algorithm=config.algorithm,
        family=config.family,
        n=config.n,
        sink=int(config.sink),
        horizon=config.resolved_horizon(),
        search=config.to_json(),
        base_seed=int(candidate.base_seed),
        lineage=[record.to_json() for record in candidate.lineage],
        schedule_i=candidate.schedule.i.tolist(),
        schedule_j=candidate.schedule.j.tolist(),
        metrics=_metrics_payload(candidate.metrics),
    )


def replay_instance(
    instance: WorstCaseInstance, engine: str = "reference"
) -> TrialMetrics:
    """Re-run a stored instance on ``engine`` and return fresh metrics.

    The schedule replays through the same scoring path the search used
    (TraceReplayAdversary → one engine trial with ``capture_opt=True``), so
    equality with ``instance.metrics`` is exact, not approximate.
    """
    config = instance.to_config(engine=engine)
    metrics = score_schedules(
        config, [instance.to_schedule()], [instance.base_seed]
    )
    return metrics[0]


class WorstCaseCorpus:
    """Content-addressed store of worst-case instances (see module docstring)."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.manifest_path = self.directory / CORPUS_MANIFEST_NAME
        self.instance_dir = self.directory / _INSTANCE_DIR

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #
    def read_manifest(self) -> Dict[str, Any]:
        if not self.manifest_path.exists():
            return {"format": _FORMAT, "instances": {}}
        try:
            manifest = json.loads(self.manifest_path.read_text("utf-8"))
        except json.JSONDecodeError as error:
            raise WorstCaseCorpusError(
                f"corrupt corpus manifest {self.manifest_path}: {error}"
            ) from error
        if int(manifest.get("format", -1)) != _FORMAT:
            raise WorstCaseCorpusError(
                f"unsupported corpus format {manifest.get('format')!r}"
            )
        if not isinstance(manifest.get("instances"), dict):
            raise WorstCaseCorpusError("corpus manifest has no instance table")
        return manifest

    def manifest_bytes(self) -> bytes:
        """The manifest's canonical serialisation (determinism probe)."""
        return json.dumps(
            self.read_manifest(), indent=2, sort_keys=True
        ).encode("utf-8")

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        payload = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
        self.directory.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.manifest_path, payload)

    # ------------------------------------------------------------------ #
    # Instances
    # ------------------------------------------------------------------ #
    def instance_path(self, digest: str) -> Path:
        return self.instance_dir / f"{digest}.json"

    def digests(self) -> List[str]:
        return sorted(self.read_manifest()["instances"])

    def summaries(self) -> Dict[str, Dict[str, Any]]:
        return dict(self.read_manifest()["instances"])

    def add(self, instance: WorstCaseInstance) -> str:
        """Persist one instance; returns its digest (no-op if present)."""
        payload = instance.canonical_bytes()
        digest = instance.digest()
        manifest = self.read_manifest()
        if digest in manifest["instances"]:
            return digest
        self.instance_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.instance_path(digest), payload)
        manifest["instances"][digest] = {
            "algorithm": instance.algorithm,
            "family": instance.family,
            "n": instance.n,
            "competitive_ratio": instance.competitive_ratio,
            "seed": int(instance.search["seed"]),
            "budget": int(instance.search["budget"]),
            "lineage_depth": len(instance.lineage),
        }
        self._write_manifest(manifest)
        return digest

    def add_outcome(self, outcome: SearchOutcome, top: int = 1) -> List[str]:
        """Store the ``top`` best finite-ratio candidates of one search run."""
        digests: List[str] = []
        for candidate in outcome.pool[: max(top, 1)]:
            if not math.isfinite(candidate.score):
                continue
            digests.append(
                self.add(instance_from_candidate(outcome.config, candidate))
            )
        return digests

    def load(self, digest: str) -> WorstCaseInstance:
        """Load and digest-verify one instance."""
        path = self.instance_path(digest)
        if not path.exists():
            raise WorstCaseCorpusError(f"no corpus instance {digest!r}")
        raw = path.read_bytes()
        actual = hashlib.sha256(raw).hexdigest()
        if actual != digest:
            raise WorstCaseCorpusError(
                f"corpus instance {digest[:12]}… is corrupt: "
                f"file bytes hash to {actual[:12]}…"
            )
        instance = WorstCaseInstance.from_payload(json.loads(raw.decode("utf-8")))
        return instance

    def load_all(self) -> Dict[str, WorstCaseInstance]:
        return {digest: self.load(digest) for digest in self.digests()}

    def best_for(
        self, algorithm: str, family: str
    ) -> Optional[WorstCaseInstance]:
        """The hardest stored instance of one algorithm × family pair."""
        best: Optional[WorstCaseInstance] = None
        for digest, summary in sorted(self.summaries().items()):
            if summary["algorithm"] != algorithm or summary["family"] != family:
                continue
            instance = self.load(digest)
            if best is None or instance.competitive_ratio > best.competitive_ratio:
                best = instance
        return best

    def verify(self) -> List[str]:
        """Digest-check every instance; returns the corrupt digests."""
        corrupt: List[str] = []
        for digest in self.digests():
            try:
                self.load(digest)
            except WorstCaseCorpusError:
                corrupt.append(digest)
        return corrupt

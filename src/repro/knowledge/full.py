"""Full knowledge: every node knows the entire sequence of interactions.

This is the strongest knowledge considered by the paper (Theorem 8): with it
the best possible algorithm terminates in Θ(n log n) interactions under the
randomized adversary, because it can simply follow the optimal offline
convergecast schedule.
"""

from __future__ import annotations

from ..core.interaction import InteractionSequence


class FullKnowledge:
    """Oracle exposing the complete committed interaction sequence."""

    knowledge_name = "full_knowledge"

    def __init__(self, sequence: InteractionSequence) -> None:
        self._sequence = sequence

    def full_sequence(self) -> InteractionSequence:
        """The entire committed sequence."""
        return self._sequence

"""The ``future`` oracle of Section 3.3 (a node knows its own future).

``u.future`` is the sequence of interactions involving ``u`` together with
their times of occurrence.  The oracle is backed by a finite committed
sequence; Theorem 6 and Corollary 1 only require each node's own future, so
the oracle refuses to answer for nodes other than the one being queried at
the algorithm level (the gossiping of futures between nodes is done by the
algorithms themselves through node memory, as in the paper's proof).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.data import NodeId
from ..core.interaction import InteractionSequence


class FutureKnowledge:
    """Oracle answering ``u.future`` queries from a committed finite sequence."""

    knowledge_name = "future"

    def __init__(self, sequence: InteractionSequence) -> None:
        self._sequence = sequence
        self._cache: Dict[NodeId, List[Tuple[int, NodeId]]] = {}

    def future(self, node: NodeId) -> List[Tuple[int, NodeId]]:
        """All interactions of ``node`` as ``(time, peer)`` pairs, ascending."""
        cached = self._cache.get(node)
        if cached is None:
            cached = [
                (interaction.time, interaction.other(node))
                for interaction in self._sequence
                if interaction.involves(node)
            ]
            self._cache[node] = cached
        return list(cached)

    @property
    def sequence(self) -> InteractionSequence:
        """The committed sequence backing this oracle."""
        return self._sequence

"""Knowledge oracles (``DODA(i1, i2, ...)`` in the paper).

A knowledge oracle is a function made available to every node that reveals
information about the future of the dynamic graph or about its topology.
The executor attaches a :class:`~repro.knowledge.base.KnowledgeBundle` to the
node views it hands to algorithms; the bundle advertises which oracles it
provides so that an algorithm's declared requirements can be checked before
a run starts.
"""

from .base import KnowledgeBundle
from .full import FullKnowledge
from .future import FutureKnowledge
from .meet_time import MeetTimeKnowledge
from .underlying_graph import UnderlyingGraphKnowledge

__all__ = [
    "FullKnowledge",
    "FutureKnowledge",
    "KnowledgeBundle",
    "MeetTimeKnowledge",
    "UnderlyingGraphKnowledge",
]

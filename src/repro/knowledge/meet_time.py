"""The ``meetTime`` oracle of Section 2.1 / 4.3.

``u.meetTime(t)`` is the smallest time ``t' > t`` such that ``I_{t'} = {u, s}``
(the node's next interaction with the sink); for the sink itself it is the
identity.  The oracle is backed by any *committed-future source*: a finite
:class:`~repro.core.interaction.InteractionSequence`, or an adversary object
exposing ``next_meeting(node, peer, after)`` over a future it has committed
to (the randomized adversary pre-draws its interactions lazily and answers
consistently with what the executor will replay).
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..core.data import NodeId
from ..core.exceptions import HorizonExhaustedError


class CommittedFutureSource(Protocol):
    """Anything that can answer next-meeting queries about a committed future."""

    def next_meeting(
        self, node: NodeId, peer: NodeId, after: int
    ) -> Optional[int]:
        """Smallest time ``t' > after`` with ``I_{t'} = {node, peer}`` or None."""
        ...


class MeetTimeKnowledge:
    """Oracle answering ``u.meetTime(t)`` queries.

    Args:
        source: the committed-future source to query.
        sink: the sink node identifier.
        horizon: optional cap; queries whose answer would exceed the horizon
            raise :class:`HorizonExhaustedError` if ``strict`` is True, and
            otherwise return ``horizon + 1`` (a sentinel strictly beyond any
            legal time, so Waiting Greedy's ``tau < meetTime`` test treats
            "never meets within the horizon" as "later than every tau", even
            when a caller sets ``tau == horizon``).
        strict: see ``horizon``.
    """

    knowledge_name = "meetTime"

    def __init__(
        self,
        source: CommittedFutureSource,
        sink: NodeId,
        horizon: Optional[int] = None,
        strict: bool = False,
    ) -> None:
        self._source = source
        self._sink = sink
        self._horizon = horizon
        self._strict = strict

    # Read-only configuration accessors, used by the vectorized decision
    # kernels to check that this oracle has exactly the shape their
    # precomputed meeting tables mirror.
    @property
    def source(self) -> CommittedFutureSource:
        """The committed-future source answering the queries."""
        return self._source

    @property
    def sink(self) -> NodeId:
        """The sink whose meetings are being queried."""
        return self._sink

    @property
    def horizon(self) -> Optional[int]:
        """The horizon cap (None when uncapped)."""
        return self._horizon

    @property
    def strict(self) -> bool:
        """Whether beyond-horizon queries raise instead of saturating."""
        return self._strict

    def meet_time(self, node: NodeId, t: int) -> int:
        """Return the node's next interaction time with the sink after ``t``."""
        if node == self._sink:
            return t
        answer = self._source.next_meeting(node, self._sink, t)
        if answer is None or (self._horizon is not None and answer > self._horizon):
            if self._strict:
                raise HorizonExhaustedError(
                    f"meetTime({node!r}, {t}) exceeds the committed horizon"
                )
            # "Never (within the horizon)" must compare strictly larger than
            # any legal tau, including tau == horizon; returning the horizon
            # itself would make Waiting Greedy's `tau < meetTime` test false
            # and silently strand never-meeting nodes.
            if self._horizon is None:
                raise HorizonExhaustedError(
                    f"meetTime({node!r}, {t}) is undefined: the committed "
                    "future is finite and no horizon fallback was configured"
                )
            return self._horizon + 1
        return answer

"""The underlying-graph oracle of Section 3.2 (nodes know G-bar).

G-bar is the static graph whose edges are the pairs of nodes interacting at
least once in the whole sequence.  The oracle can be built either from an
explicit edge list (useful for adaptive adversaries that commit to a
footprint without committing to the sequence) or from a committed finite
sequence.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Tuple

import networkx as nx

from ..core.data import NodeId
from ..core.interaction import InteractionSequence


class UnderlyingGraphKnowledge:
    """Oracle exposing the underlying graph G-bar as a networkx graph."""

    knowledge_name = "underlying_graph"

    def __init__(
        self,
        nodes: Iterable[NodeId],
        edges: Optional[Iterable[Tuple[NodeId, NodeId]]] = None,
        sequence: Optional[InteractionSequence] = None,
    ) -> None:
        if (edges is None) == (sequence is None):
            raise ValueError("provide exactly one of 'edges' or 'sequence'")
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        if edges is not None:
            graph.add_edges_from(edges)
        else:
            assert sequence is not None
            for pair in sequence.footprint_edges():
                u, v = tuple(pair)
                graph.add_edge(u, v)
        self._graph = graph

    def underlying_graph(self) -> nx.Graph:
        """A copy of G-bar (copies are cheap and keep the oracle immutable)."""
        return self._graph.copy()

    @property
    def edge_set(self) -> Set[FrozenSet[NodeId]]:
        """The edges of G-bar as a set of unordered pairs."""
        return {frozenset(edge) for edge in self._graph.edges()}

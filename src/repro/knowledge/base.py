"""Composite knowledge bundle attached to node views by the executor."""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Tuple

from ..core.data import NodeId
from ..core.exceptions import KnowledgeError


class KnowledgeBundle:
    """A collection of knowledge oracles exposed to algorithms.

    Each oracle object declares a ``knowledge_name`` (one of the identifiers
    in :mod:`repro.core.algorithm`) and implements the corresponding query
    methods.  The bundle simply dispatches; querying an oracle that was not
    granted raises :class:`~repro.core.exceptions.KnowledgeError`, which
    keeps algorithms honest about the knowledge they actually use.
    """

    def __init__(self, *oracles: Any) -> None:
        self._oracles: Dict[str, Any] = {}
        for oracle in oracles:
            name = getattr(oracle, "knowledge_name", None)
            if not name:
                raise KnowledgeError(
                    f"oracle {oracle!r} does not declare a knowledge_name"
                )
            self._oracles[name] = oracle

    def provides(self) -> FrozenSet[str]:
        """Identifiers of the oracles available in this bundle."""
        return frozenset(self._oracles)

    def has(self, name: str) -> bool:
        """True if the bundle provides the oracle ``name``."""
        return name in self._oracles

    def _get(self, name: str) -> Any:
        try:
            return self._oracles[name]
        except KeyError:
            raise KnowledgeError(
                f"knowledge {name!r} was not granted to this run "
                f"(available: {sorted(self._oracles)})"
            ) from None

    def oracle(self, name: str) -> Any:
        """The oracle object registered under ``name``.

        Used by the vectorized decision kernels to verify that the oracle
        they are about to mirror (e.g. a ``meetTime`` oracle backed by the
        trial's committed adversary) has exactly the shape they can
        reproduce.

        Raises:
            KnowledgeError: if the oracle was not granted.
        """
        return self._get(name)

    # ------------------------------------------------------------------ #
    # Dispatch helpers used by NodeView and algorithms
    # ------------------------------------------------------------------ #
    def meet_time(self, node: NodeId, t: int) -> int:
        """``node.meetTime(t)``: next interaction time with the sink after ``t``."""
        return self._get("meetTime").meet_time(node, t)

    def future(self, node: NodeId) -> List[Tuple[int, NodeId]]:
        """``node.future``: the node's future interactions ``(time, peer)``."""
        return self._get("future").future(node)

    def underlying_graph(self):
        """The underlying graph G-bar as a :class:`networkx.Graph`."""
        return self._get("underlying_graph").underlying_graph()

    def full_sequence(self):
        """The entire interaction sequence (full knowledge)."""
        return self._get("full_knowledge").full_sequence()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KnowledgeBundle({sorted(self._oracles)})"

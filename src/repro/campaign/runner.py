"""Sharded, resumable campaign execution.

The runner decomposes a :class:`~repro.campaign.spec.CampaignSpec` into its
sweep cells, runs each cell through the existing batched sweep machinery
(:func:`repro.sim.batch.run_sweep_cell`, distributed over worker processes
by :func:`repro.sim.parallel.run_sweep_cells`), and checkpoints every
completed cell to a :class:`~repro.campaign.store.CampaignStore` before
starting the next one.

Resume semantics:

* On start the runner verifies every cell already in the store
  (:meth:`CampaignStore.verify_cell`) and **skips the proven ones** — an
  interrupted campaign continues where it stopped, paying only for the
  cells it lost.
* Corrupt cells (shard/digest mismatch) are re-executed, not trusted —
  the store self-heals.
* Because every trial's seed derives from ``(master_seed, experiment,
  algorithm, n, trial)`` alone, a resumed campaign writes **byte-identical
  shards** to a fresh straight-through run, regardless of the engine or
  worker count used for either leg (``E24`` and
  ``tests/test_campaign_resume.py`` assert exactly this).
* ``max_cells`` caps how many pending cells one invocation executes — the
  hook the kill-and-resume tests use to simulate an interruption
  deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..obs import (
    TelemetryWriter,
    current_collector,
    latest_cell_records,
    read_telemetry,
    telemetry_path_for_store,
)
from ..obs import now as _now
from ..sim.parallel import run_sweep_cells
from .spec import CampaignCell, CampaignSpec, algorithm_factory_for
from .store import CampaignStore

__all__ = ["CampaignRunSummary", "campaign_status", "default_store_dir", "run_campaign"]


@dataclass
class CampaignRunSummary:
    """Outcome of one ``run_campaign`` invocation."""

    campaign: str
    spec_hash: str
    store: str
    engine: str
    total_cells: int
    skipped: int
    executed: int
    repaired: int
    remaining: int
    elapsed_seconds: float
    executed_cells: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every cell of the campaign is checkpointed."""
        return self.remaining == 0

    def to_text(self) -> str:
        state = "complete" if self.complete else f"{self.remaining} cells remaining"
        return (
            f"campaign {self.campaign!r} [{self.spec_hash[:12]}] -> {self.store}\n"
            f"  engine={self.engine} cells={self.total_cells} "
            f"skipped={self.skipped} executed={self.executed} "
            f"(repaired={self.repaired}) in {self.elapsed_seconds:.2f}s — {state}"
        )


def default_store_dir(spec: CampaignSpec, base: "str | Path" = "campaigns") -> Path:
    """The conventional store location for a spec: ``campaigns/<name>``."""
    return Path(base) / spec.name


def _cell_kwargs(spec: CampaignSpec, cell: CampaignCell, engine: str) -> Dict[str, Any]:
    """The :func:`repro.sim.batch.run_sweep_cell` arguments of one cell."""
    return {
        "algorithm_factory": algorithm_factory_for(cell.algorithm),
        "n": cell.n,
        "trials": spec.trials,
        "master_seed": spec.master_seed,
        "experiment": spec.experiment,
        "engine": engine,
        "adversary": cell.adversary,
        "adversary_params": spec.params_for(cell.adversary) or None,
        "block_size": spec.block_size,
        "capture_opt": spec.ratio,
    }


def run_campaign(
    spec: CampaignSpec,
    store_dir: "str | Path",
    engine: Optional[str] = None,
    workers: int = 1,
    max_cells: Optional[int] = None,
    block_size: Optional[int] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> CampaignRunSummary:
    """Run (or resume) a campaign into ``store_dir``.

    Args:
        spec: the validated campaign spec.
        engine: run-time engine override (default: the spec's engine);
            results are engine-invariant, so resuming under a different
            engine is safe and checkpoint-compatible.
        workers: processes for cell-level fan-out (cells are independent).
        max_cells: execute at most this many pending cells, then stop —
            the deterministic "interrupt" used by the resume tests.
        block_size: run-time committed-window override.
        echo: optional progress sink (e.g. ``print``); called once per cell.

    Raises:
        CampaignStoreMismatch: if ``store_dir`` holds a different campaign.
        ValueError: if ``workers < 1`` or ``max_cells < 0``.
    """
    if max_cells is not None and max_cells < 0:
        raise ValueError(f"max_cells must be >= 0, got {max_cells}")
    spec = spec.with_engine(engine, block_size)
    started = _now()
    store = CampaignStore(store_dir)
    store.initialize(spec)
    collector = current_collector()
    # Telemetry is observe-only: it lands in a sidecar telemetry.jsonl
    # next to the store, never in shards or the manifest, so traced and
    # untraced campaigns produce byte-identical stores.
    telemetry = TelemetryWriter(telemetry_path_for_store(store_dir))

    with collector.span(
        "campaign.run", campaign=spec.name, engine=spec.engine, workers=workers
    ) as run_span:
        statuses = store.verify(spec)
        pending = [s.cell for s in statuses if s.state != "complete"]
        repaired_keys = {s.cell.key for s in statuses if s.state == "corrupt"}
        skipped = len(statuses) - len(pending)
        to_run = pending if max_cells is None else pending[:max_cells]
        pending_keys = {cell.key for cell in pending}
        for status in statuses:
            if status.cell.key not in pending_keys:
                telemetry.skip(status.cell.key)
                if collector.enabled:
                    collector.event(
                        "campaign.resume_skip", cell=status.cell.key
                    )

        executed: List[str] = []
        repaired = 0
        kwargs = [_cell_kwargs(spec, cell, spec.engine) for cell in to_run]
        cell_results = run_sweep_cells(kwargs, workers=workers, with_timing=True)
        for cell, (metrics, elapsed) in zip(to_run, cell_results):
            fallback_count = sum(
                1
                for trial_metrics in metrics
                if "engine_fallback" in trial_metrics.extra
            )
            store.write_cell(
                cell, metrics, spec.engine, elapsed, fallback_count=fallback_count
            )
            telemetry.cell(
                cell.key,
                elapsed_seconds=elapsed,
                trials=len(metrics),
                fallbacks=fallback_count,
                engine=spec.engine,
            )
            executed.append(cell.key)
            if cell.key in repaired_keys:
                repaired += 1
            if echo is not None:
                echo(f"  cell {cell.label()} [{cell.key}] checkpointed")

        elapsed_seconds = _now() - started
        telemetry.run(
            elapsed_seconds=elapsed_seconds,
            cells=len(executed),
            skipped=skipped,
        )
        run_span.set(
            cells=len(executed), skipped=skipped, repaired=repaired
        )

    return CampaignRunSummary(
        campaign=spec.name,
        spec_hash=spec.spec_hash(),
        store=str(store_dir),
        engine=spec.engine,
        total_cells=len(statuses),
        skipped=skipped,
        executed=len(executed),
        repaired=repaired,
        remaining=len(pending) - len(executed),
        elapsed_seconds=elapsed_seconds,
        executed_cells=executed,
    )


def campaign_status(store_dir: "str | Path") -> str:
    """Human-readable status of a campaign store (for ``campaign status``).

    Reconstructs the spec from the manifest echo, verifies every cell, and
    reports complete/pending/corrupt counts plus per-cell lines.

    Raises:
        CampaignStoreError: if the directory is not a campaign store.
    """
    from .spec import spec_from_dict

    store = CampaignStore(store_dir)
    manifest = store.read_manifest()
    spec_echo = dict(manifest.get("spec", {}))
    spec = spec_from_dict(spec_echo)
    statuses = store.verify(spec)
    # Wall-time / throughput columns come from the observe-only telemetry
    # sidecar; a store without one (or written before telemetry existed)
    # renders exactly as before.
    telemetry = read_telemetry(telemetry_path_for_store(store.directory))
    timings = latest_cell_records(telemetry)
    by_state: Dict[str, int] = {"complete": 0, "pending": 0, "corrupt": 0}
    lines = [
        f"campaign {manifest.get('campaign')!r} "
        f"[{manifest.get('spec_hash', '')[:12]}] at {store.directory}",
        f"  repro version {manifest.get('repro_version')}, "
        f"{len(statuses)} cells",
    ]
    for status in statuses:
        by_state[status.state] = by_state.get(status.state, 0) + 1
        suffix = f" ({status.detail})" if status.detail else ""
        timing = timings.get(status.cell.key)
        timing_suffix = ""
        if timing is not None:
            elapsed = float(timing.get("elapsed_seconds", 0.0))
            rate = float(timing.get("trials_per_second", 0.0))
            timing_suffix = f"  {elapsed:8.2f}s {rate:10.1f} trials/s"
        lines.append(
            f"  [{status.state:8s}] {status.cell.label()} "
            f"{status.cell.key}{suffix}{timing_suffix}"
        )
    lines.append(
        f"  complete={by_state['complete']} pending={by_state['pending']} "
        f"corrupt={by_state['corrupt']}"
    )
    if timings:
        total_elapsed = sum(
            float(t.get("elapsed_seconds", 0.0)) for t in timings.values()
        )
        total_trials = sum(int(t.get("trials", 0)) for t in timings.values())
        overall = total_trials / total_elapsed if total_elapsed > 0 else 0.0
        lines.append(
            f"  telemetry: {total_elapsed:.2f}s across "
            f"{len(timings)} timed cells, {overall:.1f} trials/s overall"
        )
    return "\n".join(lines)

"""Sharded, resumable campaign execution.

The runner decomposes a :class:`~repro.campaign.spec.CampaignSpec` into its
sweep cells, runs each cell through the existing batched sweep machinery
(:func:`repro.sim.batch.run_sweep_cell`, distributed over worker processes
by :func:`repro.sim.parallel.run_sweep_cells`), and checkpoints every
completed cell to a :class:`~repro.campaign.store.CampaignStore` before
starting the next one.

Resume semantics:

* On start the runner verifies every cell already in the store
  (:meth:`CampaignStore.verify_cell`) and **skips the proven ones** — an
  interrupted campaign continues where it stopped, paying only for the
  cells it lost.
* Corrupt cells (shard/digest mismatch) are re-executed, not trusted —
  the store self-heals.
* Because every trial's seed derives from ``(master_seed, experiment,
  algorithm, n, trial)`` alone, a resumed campaign writes **byte-identical
  shards** to a fresh straight-through run, regardless of the engine or
  worker count used for either leg (``E24`` and
  ``tests/test_campaign_resume.py`` assert exactly this).
* ``max_cells`` caps how many pending cells one invocation executes — the
  hook the kill-and-resume tests use to simulate an interruption
  deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..sim.parallel import run_sweep_cells
from .spec import CampaignCell, CampaignSpec, algorithm_factory_for
from .store import CampaignStore

__all__ = ["CampaignRunSummary", "campaign_status", "default_store_dir", "run_campaign"]


@dataclass
class CampaignRunSummary:
    """Outcome of one ``run_campaign`` invocation."""

    campaign: str
    spec_hash: str
    store: str
    engine: str
    total_cells: int
    skipped: int
    executed: int
    repaired: int
    remaining: int
    elapsed_seconds: float
    executed_cells: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every cell of the campaign is checkpointed."""
        return self.remaining == 0

    def to_text(self) -> str:
        state = "complete" if self.complete else f"{self.remaining} cells remaining"
        return (
            f"campaign {self.campaign!r} [{self.spec_hash[:12]}] -> {self.store}\n"
            f"  engine={self.engine} cells={self.total_cells} "
            f"skipped={self.skipped} executed={self.executed} "
            f"(repaired={self.repaired}) in {self.elapsed_seconds:.2f}s — {state}"
        )


def default_store_dir(spec: CampaignSpec, base: "str | Path" = "campaigns") -> Path:
    """The conventional store location for a spec: ``campaigns/<name>``."""
    return Path(base) / spec.name


def _cell_kwargs(spec: CampaignSpec, cell: CampaignCell, engine: str) -> Dict[str, Any]:
    """The :func:`repro.sim.batch.run_sweep_cell` arguments of one cell."""
    return {
        "algorithm_factory": algorithm_factory_for(cell.algorithm),
        "n": cell.n,
        "trials": spec.trials,
        "master_seed": spec.master_seed,
        "experiment": spec.experiment,
        "engine": engine,
        "adversary": cell.adversary,
        "adversary_params": spec.params_for(cell.adversary) or None,
        "block_size": spec.block_size,
        "capture_opt": spec.ratio,
    }


def run_campaign(
    spec: CampaignSpec,
    store_dir: "str | Path",
    engine: Optional[str] = None,
    workers: int = 1,
    max_cells: Optional[int] = None,
    block_size: Optional[int] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> CampaignRunSummary:
    """Run (or resume) a campaign into ``store_dir``.

    Args:
        spec: the validated campaign spec.
        engine: run-time engine override (default: the spec's engine);
            results are engine-invariant, so resuming under a different
            engine is safe and checkpoint-compatible.
        workers: processes for cell-level fan-out (cells are independent).
        max_cells: execute at most this many pending cells, then stop —
            the deterministic "interrupt" used by the resume tests.
        block_size: run-time committed-window override.
        echo: optional progress sink (e.g. ``print``); called once per cell.

    Raises:
        CampaignStoreMismatch: if ``store_dir`` holds a different campaign.
        ValueError: if ``workers < 1`` or ``max_cells < 0``.
    """
    if max_cells is not None and max_cells < 0:
        raise ValueError(f"max_cells must be >= 0, got {max_cells}")
    spec = spec.with_engine(engine, block_size)
    started = time.perf_counter()
    store = CampaignStore(store_dir)
    store.initialize(spec)

    statuses = store.verify(spec)
    pending = [s.cell for s in statuses if s.state != "complete"]
    repaired_keys = {s.cell.key for s in statuses if s.state == "corrupt"}
    skipped = len(statuses) - len(pending)
    to_run = pending if max_cells is None else pending[:max_cells]

    executed: List[str] = []
    repaired = 0
    kwargs = [_cell_kwargs(spec, cell, spec.engine) for cell in to_run]
    cell_results = run_sweep_cells(kwargs, workers=workers, with_timing=True)
    for cell, (metrics, elapsed) in zip(to_run, cell_results):
        fallback_count = sum(
            1 for trial_metrics in metrics if "engine_fallback" in trial_metrics.extra
        )
        store.write_cell(
            cell, metrics, spec.engine, elapsed, fallback_count=fallback_count
        )
        executed.append(cell.key)
        if cell.key in repaired_keys:
            repaired += 1
        if echo is not None:
            echo(f"  cell {cell.label()} [{cell.key}] checkpointed")

    return CampaignRunSummary(
        campaign=spec.name,
        spec_hash=spec.spec_hash(),
        store=str(store_dir),
        engine=spec.engine,
        total_cells=len(statuses),
        skipped=skipped,
        executed=len(executed),
        repaired=repaired,
        remaining=len(pending) - len(executed),
        elapsed_seconds=time.perf_counter() - started,
        executed_cells=executed,
    )


def campaign_status(store_dir: "str | Path") -> str:
    """Human-readable status of a campaign store (for ``campaign status``).

    Reconstructs the spec from the manifest echo, verifies every cell, and
    reports complete/pending/corrupt counts plus per-cell lines.

    Raises:
        CampaignStoreError: if the directory is not a campaign store.
    """
    from .spec import spec_from_dict

    store = CampaignStore(store_dir)
    manifest = store.read_manifest()
    spec_echo = dict(manifest.get("spec", {}))
    spec = spec_from_dict(spec_echo)
    statuses = store.verify(spec)
    by_state: Dict[str, int] = {"complete": 0, "pending": 0, "corrupt": 0}
    lines = [
        f"campaign {manifest.get('campaign')!r} "
        f"[{manifest.get('spec_hash', '')[:12]}] at {store.directory}",
        f"  repro version {manifest.get('repro_version')}, "
        f"{len(statuses)} cells",
    ]
    for status in statuses:
        by_state[status.state] = by_state.get(status.state, 0) + 1
        suffix = f" ({status.detail})" if status.detail else ""
        lines.append(
            f"  [{status.state:8s}] {status.cell.label()} "
            f"{status.cell.key}{suffix}"
        )
    lines.append(
        f"  complete={by_state['complete']} pending={by_state['pending']} "
        f"corrupt={by_state['corrupt']}"
    )
    return "\n".join(lines)

"""Campaign orchestration: declarative specs, resumable runs, stored results.

This package turns one-shot in-memory sweeps into an orchestrated
reproduction system:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, the declarative
  experiment grid (algorithms × adversary families × ``n`` × trials),
  loadable from TOML/JSON and validated against the live registries;
* :mod:`repro.campaign.runner` — sharded execution over the batched sweep
  machinery, checkpointing each completed cell and **resuming**
  interrupted campaigns by skipping cells the store can prove;
* :mod:`repro.campaign.store` — the content-addressed on-disk store
  (JSONL shard per cell + verifiable manifest);
* :mod:`repro.campaign.report` — aggregation into the paper's comparison
  tables and figures.

Invariant tying it all together: for a given spec hash, the store contents
are a pure function of the spec — independent of engine, worker count,
interruptions and resume order (``E24`` asserts fresh ≡ resumed cell for
cell).  CLI: ``python -m repro campaign run|status|report``; docs:
``docs/campaigns.md``.
"""

from .report import CampaignReport, build_campaign_report, write_campaign_figures
from .runner import (
    CampaignRunSummary,
    campaign_status,
    default_store_dir,
    run_campaign,
)
from .spec import (
    CampaignCell,
    CampaignSpec,
    CampaignSpecError,
    algorithm_factory_for,
    load_campaign_spec,
    spec_from_dict,
)
from .store import (
    CampaignStore,
    CampaignStoreError,
    CampaignStoreMismatch,
    CellStatus,
)

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "CampaignRunSummary",
    "CampaignSpec",
    "CampaignSpecError",
    "CampaignStore",
    "CampaignStoreError",
    "CampaignStoreMismatch",
    "CellStatus",
    "algorithm_factory_for",
    "build_campaign_report",
    "campaign_status",
    "default_store_dir",
    "load_campaign_spec",
    "run_campaign",
    "spec_from_dict",
    "write_campaign_figures",
]

"""Content-addressed on-disk store for campaign results.

Layout (one directory per campaign)::

    <store>/
        manifest.json           # spec hash, spec echo, repro version,
                                # one entry per completed cell
        cells/<cell_key>.jsonl  # one JSON record per trial, shard per cell

Invariants:

* **Shards are deterministic byte streams.**  A cell shard contains only
  trial records (sorted JSON keys, no timestamps), so two runs of the same
  spec — fresh, resumed, different engine, different worker count —
  produce byte-identical shards.  All wall-clock bookkeeping (timestamps,
  elapsed seconds, engine used) lives in the manifest, in fields the
  equality checks deliberately ignore.
* **Every manifest entry is verifiable.**  The entry records the shard's
  SHA-256 digest and record count; :meth:`CampaignStore.verify_cell`
  recomputes both, so resume never trusts a cell the disk cannot prove.
  A failed verification marks the cell corrupt — the runner re-executes
  it (self-healing) and ``campaign status`` reports it.
* **A store binds to one spec hash.**  Opening a store with a spec whose
  :meth:`~repro.campaign.spec.CampaignSpec.spec_hash` differs from the
  manifest's raises :class:`CampaignStoreMismatch`; a campaign directory
  can never silently mix results from two different grids.
* **Writes are atomic** (temp file + ``os.replace``), so an interrupt
  mid-checkpoint leaves either the previous state or the new one, never a
  torn manifest.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..sim.metrics import TrialMetrics
from .spec import CampaignCell, CampaignSpec

__all__ = [
    "CampaignStore",
    "CampaignStoreError",
    "CampaignStoreMismatch",
    "CellStatus",
    "MANIFEST_NAME",
    "metrics_to_record",
    "record_to_metrics",
]

MANIFEST_NAME = "manifest.json"
_CELL_DIR = "cells"
_FORMAT = 1


class CampaignStoreError(RuntimeError):
    """The store is unreadable or structurally invalid."""


class CampaignStoreMismatch(CampaignStoreError):
    """The store belongs to a different campaign spec (hash mismatch)."""


@dataclass(frozen=True)
class CellStatus:
    """Verification status of one cell: ``complete``, ``corrupt`` or ``pending``."""

    cell: CampaignCell
    state: str
    detail: str = ""


def metrics_to_record(metrics: TrialMetrics, trial: int, adversary: str) -> Dict[str, Any]:
    """One trial's JSON-serialisable store record (deterministic content).

    ``duration`` is ``None`` for non-terminated trials (JSON has no
    ``inf``); :func:`record_to_metrics` restores the ``math.inf``.  Trials
    run with offline-baseline capture (``ratio = true`` campaigns)
    additionally carry ``opt_cost`` (``None`` standing for the
    :data:`~repro.ratio.semantics.UNREACHABLE` sentinel) and
    ``competitive_ratio`` (``None`` when non-finite); trials without
    capture omit both keys, so pre-ratio shards stay byte-identical.
    """
    record = {
        "adversary": adversary,
        "algorithm": metrics.algorithm,
        "duration": metrics.duration if metrics.terminated else None,
        "horizon": metrics.horizon,
        "n": metrics.n,
        "seed": metrics.seed,
        "sink_coverage": metrics.sink_coverage,
        "terminated": metrics.terminated,
        "transmissions": metrics.transmissions,
        "trial": trial,
    }
    if metrics.opt_cost is not None:
        record["opt_cost"] = (
            metrics.opt_cost if math.isfinite(metrics.opt_cost) else None
        )
        ratio = metrics.competitive_ratio
        record["competitive_ratio"] = (
            ratio if ratio is not None and math.isfinite(ratio) else None
        )
    return record


def record_to_metrics(record: Dict[str, Any]) -> TrialMetrics:
    """Rebuild :class:`~repro.sim.metrics.TrialMetrics` from a store record.

    The competitive ratio is *recomputed* from ``(duration, opt_cost)``
    through :func:`repro.ratio.semantics.competitive_ratio` rather than
    trusted from the record, so a round trip can never drift from the
    single definition (``inf`` ratios survive the JSON ``None``).
    """
    from ..ratio.semantics import competitive_ratio as _competitive_ratio

    duration = record["duration"]
    restored = math.inf if duration is None else float(duration)
    opt_cost: "float | None" = None
    ratio: "float | None" = None
    if "opt_cost" in record:
        stored = record["opt_cost"]
        opt_cost = math.inf if stored is None else float(stored)
        value = _competitive_ratio(restored, opt_cost)
        ratio = None if math.isnan(value) else value
    return TrialMetrics(
        n=record["n"],
        seed=record["seed"],
        algorithm=record["algorithm"],
        terminated=record["terminated"],
        duration=restored,
        transmissions=record["transmissions"],
        horizon=record["horizon"],
        sink_coverage=record["sink_coverage"],
        opt_cost=opt_cost,
        competitive_ratio=ratio,
    )


def _shard_bytes(records: Sequence[Dict[str, Any]]) -> bytes:
    lines = [json.dumps(record, sort_keys=True) for record in records]
    return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


class CampaignStore:
    """Checkpointed result store of one campaign (see module docstring)."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.manifest_path = self.directory / MANIFEST_NAME
        self.cell_dir = self.directory / _CELL_DIR

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def exists(self) -> bool:
        """Whether this directory already holds a campaign manifest."""
        return self.manifest_path.exists()

    def initialize(self, spec: CampaignSpec) -> Dict[str, Any]:
        """Create the store for ``spec``, or open it if it already matches.

        Returns the manifest.

        Raises:
            CampaignStoreMismatch: if the directory holds a manifest for a
                different spec hash.
            CampaignStoreError: if an existing manifest is unreadable.
        """
        if self.exists():
            manifest = self.read_manifest()
            stored = manifest.get("spec_hash")
            if stored != spec.spec_hash():
                raise CampaignStoreMismatch(
                    f"store {self.directory} belongs to campaign "
                    f"{manifest.get('campaign')!r} (spec hash {stored}), "
                    f"which differs from the requested spec "
                    f"(hash {spec.spec_hash()}); point the run at a fresh "
                    "directory or restore the original spec"
                )
            return manifest
        # Imported lazily: the package __init__ imports this module, so the
        # version attribute may not exist yet at module-import time.
        from .. import __version__ as repro_version

        self.directory.mkdir(parents=True, exist_ok=True)
        self.cell_dir.mkdir(exist_ok=True)
        manifest = {
            "format": _FORMAT,
            "campaign": spec.name,
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "repro_version": repro_version,
            "created_at": time.time(),
            "cells": {},
        }
        self._write_manifest(manifest)
        return manifest

    def read_manifest(self) -> Dict[str, Any]:
        """Load and structurally check the manifest.

        Raises:
            CampaignStoreError: if the manifest is missing or unparseable.
        """
        if not self.manifest_path.exists():
            raise CampaignStoreError(
                f"no campaign manifest at {self.manifest_path} "
                "(is this a campaign store directory?)"
            )
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise CampaignStoreError(
                f"unreadable campaign manifest {self.manifest_path}: {error}"
            ) from None
        if not isinstance(manifest, dict) or "cells" not in manifest:
            raise CampaignStoreError(
                f"campaign manifest {self.manifest_path} has no 'cells' table"
            )
        if not isinstance(manifest["cells"], dict):
            raise CampaignStoreError(
                f"campaign manifest {self.manifest_path} is corrupt: 'cells' "
                f"must be a table, found {type(manifest['cells']).__name__}"
            )
        if "spec" in manifest and not isinstance(manifest["spec"], dict):
            raise CampaignStoreError(
                f"campaign manifest {self.manifest_path} is corrupt: 'spec' "
                f"must be a table, found {type(manifest['spec']).__name__}"
            )
        return manifest

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        payload = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
        _atomic_write(self.manifest_path, payload)

    # ------------------------------------------------------------------ #
    # Cells
    # ------------------------------------------------------------------ #
    def shard_path(self, cell_key: str) -> Path:
        return self.cell_dir / f"{cell_key}.jsonl"

    def write_cell(
        self,
        cell: CampaignCell,
        metrics: Sequence[TrialMetrics],
        engine: str,
        elapsed_seconds: float,
        fallback_count: int = 0,
    ) -> None:
        """Checkpoint one completed cell: shard first, then manifest entry.

        ``fallback_count`` records how many of the cell's trials the
        vectorized engine routed to the fast fallback — engine bookkeeping,
        so it lives in the manifest entry (like ``engine`` and the wall
        clock), never in the shard bytes: shards stay deterministic
        functions of the spec.
        """
        records = [
            metrics_to_record(trial_metrics, trial, cell.adversary)
            for trial, trial_metrics in enumerate(metrics)
        ]
        payload = _shard_bytes(records)
        self.cell_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.shard_path(cell.key), payload)
        manifest = self.read_manifest()
        manifest["cells"][cell.key] = {
            "adversary": cell.adversary,
            "algorithm": cell.algorithm,
            "n": cell.n,
            "records": len(records),
            "digest": hashlib.sha256(payload).hexdigest(),
            "shard": f"{_CELL_DIR}/{cell.key}.jsonl",
            "engine": engine,
            "fallbacks": int(fallback_count),
            "elapsed_seconds": round(elapsed_seconds, 6),
            "completed_at": time.time(),
        }
        self._write_manifest(manifest)

    def verify_cell(
        self, cell: CampaignCell, manifest: Optional[Dict[str, Any]] = None
    ) -> CellStatus:
        """Prove one cell's checkpoint against the disk.

        ``complete`` requires a manifest entry whose recorded digest and
        record count match the shard bytes; a present-but-unprovable cell
        is ``corrupt`` (tampered shard, truncated write, edited manifest),
        an absent one is ``pending``.
        """
        manifest = manifest if manifest is not None else self.read_manifest()
        entry = manifest["cells"].get(cell.key)
        if entry is None:
            return CellStatus(cell, "pending")
        shard = self.shard_path(cell.key)
        if not shard.exists():
            return CellStatus(cell, "corrupt", "manifest entry without shard file")
        payload = shard.read_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        if digest != entry.get("digest"):
            return CellStatus(cell, "corrupt", "shard digest mismatch")
        count = sum(1 for line in payload.splitlines() if line.strip())
        if count != entry.get("records"):
            return CellStatus(cell, "corrupt", "record count mismatch")
        return CellStatus(cell, "complete")

    def verify(self, spec: CampaignSpec) -> List[CellStatus]:
        """Verify every cell of ``spec`` against this store, in cell order."""
        manifest = self.read_manifest()
        return [self.verify_cell(cell, manifest) for cell in spec.cells()]

    def load_cell(self, cell_key: str) -> List[Dict[str, Any]]:
        """The raw trial records of one cell shard (in trial order).

        Raises:
            CampaignStoreError: if the shard is missing or unparseable.
        """
        shard = self.shard_path(cell_key)
        if not shard.exists():
            raise CampaignStoreError(f"missing cell shard {shard}")
        records: List[Dict[str, Any]] = []
        try:
            for line in shard.read_text(encoding="utf-8").splitlines():
                if line.strip():
                    records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise CampaignStoreError(
                f"corrupt cell shard {shard}: {error}"
            ) from None
        return records

    def load_cell_metrics(self, cell_key: str) -> List[TrialMetrics]:
        """One cell's records as :class:`~repro.sim.metrics.TrialMetrics`."""
        return [record_to_metrics(record) for record in self.load_cell(cell_key)]

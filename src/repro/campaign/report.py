"""Aggregation and paper-figure reports over a campaign store.

Loads a :class:`~repro.campaign.store.CampaignStore`, recomputes the
paper's summary statistics through :mod:`repro.analysis` (sample summaries
via :func:`~repro.analysis.statistics.summarize_sample`, growth-rate
exponents via :func:`~repro.analysis.fitting.fit_power_law`), and renders:

* **Markdown tables** — one per adversary family (the paper's main
  comparison: algorithms × ``n`` with termination rate, mean/std/median/p90
  interactions), plus a scaling table of fitted power-law exponents; for
  ``ratio = true`` campaigns the comparison gains competitive-ratio columns
  and each adversary additionally gets a ratio-vs-``n`` table (mean finite
  ratio with 95% CI per ``(algorithm, n)``, via
  :mod:`repro.analysis.ratio`) and a fitted ratio-trend table;
* **matplotlib figures** — duration-vs-``n`` log-log curves per adversary
  family, one line per algorithm.  Figure output is gated on matplotlib
  being importable; without it the report still produces every table and
  says explicitly that figures were skipped (no hard dependency).

Determinism: the report is a pure function of the store's shard contents —
tables from a fresh run and from an interrupted-then-resumed run of the
same spec render identically (asserted by ``E24``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.fitting import fit_power_law
from ..analysis.ratio import RatioPoint, fit_ratio_trend, summarize_finite_ratios
from ..analysis.statistics import summarize_sample
from ..sim.results import ResultTable
from .spec import CampaignSpec, spec_from_dict
from .store import CampaignStore

__all__ = ["CampaignReport", "build_campaign_report", "write_campaign_figures"]


@dataclass
class CampaignReport:
    """Rendered campaign aggregation: tables plus bookkeeping."""

    campaign: str
    spec_hash: str
    tables: List[ResultTable]
    complete_cells: int
    total_cells: int
    notes: List[str] = field(default_factory=list)

    def to_markdown(self) -> str:
        """The full report as markdown (deterministic for a given store)."""
        lines = [
            f"# Campaign report — {self.campaign}",
            "",
            f"- spec hash: `{self.spec_hash}`",
            f"- cells aggregated: {self.complete_cells}/{self.total_cells}",
        ]
        for note in self.notes:
            lines.append(f"- {note}")
        for table in self.tables:
            lines.append("")
            lines.append(table.to_markdown())
        return "\n".join(lines)


def _cell_durations(records: Sequence[Dict[str, Any]]) -> List[float]:
    return [
        float(record["duration"])
        for record in records
        if record["terminated"] and record["duration"] is not None
    ]


def _cell_ratio_point(n: int, records: Sequence[Dict[str, Any]]) -> RatioPoint:
    """Ratio statistics of one cell's records (ratio campaigns only).

    ``captured`` counts trials that carried the offline baseline at all;
    only *finite* ratios (terminated trial, reachable baseline) enter the
    summary — mirroring :mod:`repro.analysis.ratio`.
    """
    captured = [record for record in records if "opt_cost" in record]
    finite = [
        float(record["competitive_ratio"])
        for record in captured
        if record.get("competitive_ratio") is not None
    ]
    return RatioPoint(
        n=int(n),
        captured=len(captured),
        finite=len(finite),
        summary=summarize_finite_ratios(finite),
    )


def _load_verified(store_dir: "str | Path"):
    """Open a store, reconstruct its spec, verify every cell.

    Returns ``(store, manifest, spec, statuses)`` — the shared first step
    of the report and figure builders.
    """
    store = CampaignStore(store_dir)
    manifest = store.read_manifest()
    spec = spec_from_dict(dict(manifest.get("spec", {})))
    statuses = store.verify(spec)
    return store, manifest, spec, statuses


def _grid_records(
    store: CampaignStore, spec: CampaignSpec, complete: Sequence
) -> Dict[str, Dict[str, List[Tuple[int, List[Dict[str, Any]]]]]]:
    """``{adversary: {algorithm: [(n, records), ...]}}`` in spec cell order.

    One shard read per complete cell — both the tables and the figures
    aggregate from this single structure, so they can never diverge.
    """
    grid: Dict[str, Dict[str, List[Tuple[int, List[Dict[str, Any]]]]]] = {}
    for cell in complete:
        grid.setdefault(cell.adversary, {}).setdefault(cell.algorithm, []).append(
            (cell.n, store.load_cell(cell.key))
        )
    return grid


def build_campaign_report(store_dir: "str | Path") -> CampaignReport:
    """Aggregate a campaign store into the paper's comparison tables.

    Only cells that verify (:meth:`CampaignStore.verify_cell`) are
    aggregated; pending/corrupt cells are counted and called out in the
    report notes instead of silently skewing the statistics.

    Raises:
        CampaignStoreError: if the directory is not a campaign store.
    """
    store, manifest, spec, statuses = _load_verified(store_dir)
    complete = [s.cell for s in statuses if s.state == "complete"]
    grid = _grid_records(store, spec, complete)
    notes: List[str] = []
    missing = [s for s in statuses if s.state != "complete"]
    if missing:
        notes.append(
            f"{len(missing)} of {len(statuses)} cells not aggregated "
            f"({', '.join(sorted({s.state for s in missing}))}); "
            "run `repro campaign run` to fill them in"
        )

    # The spec flag is authoritative: records carry opt_cost iff the
    # campaign ran with ratio capture, and ratio campaigns embed the flag
    # in their spec hash — no need to sniff shard contents.
    with_ratio = bool(spec.ratio)
    tables: List[ResultTable] = []
    for adversary in spec.adversaries:
        columns = [
            "algorithm", "n", "trials", "terminated",
            "mean", "std", "median", "p90",
        ]
        if with_ratio:
            columns += ["mean_ratio", "median_ratio", "p90_ratio"]
        table = ResultTable(
            title=f"Adversary {adversary!r}: interactions to termination",
            columns=columns,
        )
        ratio_table = ResultTable(
            title=f"Adversary {adversary!r}: competitive ratio vs n "
            "(online duration / offline optimum)",
            columns=[
                "algorithm", "n", "captured", "finite",
                "mean_ratio", "ci95_low", "ci95_high",
            ],
        )
        scaling_rows: List[Tuple[str, List[int], List[float]]] = []
        ratio_trend_rows: List[Tuple[str, List[RatioPoint]]] = []
        for algorithm in spec.algorithms:
            ns: List[int] = []
            means: List[float] = []
            points: List[RatioPoint] = []
            for n, records in grid.get(adversary, {}).get(algorithm, []):
                finished = _cell_durations(records)
                summary = summarize_sample(finished) if finished else None
                row = dict(
                    algorithm=algorithm,
                    n=n,
                    trials=len(records),
                    terminated=(
                        sum(1 for r in records if r["terminated"]) / len(records)
                        if records
                        else 0.0
                    ),
                    mean=summary.mean if summary else math.inf,
                    std=summary.std if summary else math.inf,
                    median=summary.median if summary else math.inf,
                    p90=summary.p90 if summary else math.inf,
                )
                if with_ratio:
                    point = _cell_ratio_point(n, records)
                    points.append(point)
                    low, high = point.confidence_interval()
                    row.update(
                        mean_ratio=(
                            point.summary.mean if point.summary else math.inf
                        ),
                        median_ratio=(
                            point.summary.median if point.summary else math.inf
                        ),
                        p90_ratio=(
                            point.summary.p90 if point.summary else math.inf
                        ),
                    )
                    ratio_table.add_row(
                        algorithm=algorithm,
                        n=n,
                        captured=point.captured,
                        finite=point.finite,
                        mean_ratio=point.mean,
                        ci95_low=low,
                        ci95_high=high,
                    )
                table.add_row(**row)
                if summary is not None:
                    ns.append(n)
                    means.append(summary.mean)
            if len(ns) >= 2 and all(m > 0 for m in means):
                scaling_rows.append((algorithm, ns, means))
            if with_ratio and points:
                ratio_trend_rows.append((algorithm, points))
        if table.rows:
            tables.append(table)
        if ratio_table.rows:
            tables.append(ratio_table)
        if scaling_rows:
            scaling = ResultTable(
                title=f"Adversary {adversary!r}: fitted growth exponents "
                "(mean duration ~ c*n^alpha)",
                columns=["algorithm", "points", "exponent", "r_squared"],
            )
            for algorithm, ns, means in scaling_rows:
                fit = fit_power_law(ns, means)
                scaling.add_row(
                    algorithm=algorithm,
                    points=len(ns),
                    exponent=fit.exponent,
                    r_squared=fit.r_squared,
                )
            tables.append(scaling)
        if ratio_trend_rows:
            trend = ResultTable(
                title=f"Adversary {adversary!r}: fitted ratio trend "
                "(mean ratio ~ c*n^alpha)",
                columns=["algorithm", "points", "exponent", "r_squared"],
            )
            for algorithm, points in ratio_trend_rows:
                fit = fit_ratio_trend(points)
                if fit is None:
                    continue
                trend.add_row(
                    algorithm=algorithm,
                    points=sum(1 for p in points if p.summary is not None),
                    exponent=fit.exponent,
                    r_squared=fit.r_squared,
                )
            if trend.rows:
                tables.append(trend)

    return CampaignReport(
        campaign=str(manifest.get("campaign")),
        spec_hash=str(manifest.get("spec_hash", "")),
        tables=tables,
        complete_cells=len(complete),
        total_cells=len(statuses),
        notes=notes,
    )


def write_campaign_figures(
    store_dir: "str | Path", figures_dir: "str | Path"
) -> Optional[List[Path]]:
    """Emit duration-vs-n figures for a store; returns the written paths.

    One log-log figure per adversary family, one curve per algorithm,
    aggregated through the same :func:`_grid_records` structure as the
    tables.  Returns ``None`` (without raising) when matplotlib is not
    installed — keeping matplotlib an optional dependency of an otherwise
    stdlib+numpy package — and an empty list when matplotlib is present
    but the store holds nothing plottable (no complete cells with
    terminated trials); callers word their notes accordingly.
    """
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return None

    store, manifest, spec, statuses = _load_verified(store_dir)
    complete = [s.cell for s in statuses if s.state == "complete"]
    grid = _grid_records(store, spec, complete)
    output = Path(figures_dir)
    output.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for adversary in spec.adversaries:
        figure, axes = plt.subplots(figsize=(6.0, 4.0))
        plotted = False
        for algorithm in spec.algorithms:
            points: List[Tuple[int, float]] = []
            for n, records in grid.get(adversary, {}).get(algorithm, []):
                finished = _cell_durations(records)
                if finished:
                    points.append((n, sum(finished) / len(finished)))
            if len(points) >= 1:
                points.sort()
                axes.plot(
                    [n for n, _ in points],
                    [mean for _, mean in points],
                    marker="o",
                    label=algorithm,
                )
                plotted = True
        if not plotted:
            plt.close(figure)
            continue
        axes.set_xscale("log")
        axes.set_yscale("log")
        axes.set_xlabel("n (nodes)")
        axes.set_ylabel("mean interactions to termination")
        axes.set_title(f"{manifest.get('campaign')} — adversary {adversary}")
        axes.legend()
        figure.tight_layout()
        path = output / f"{manifest.get('campaign')}_{adversary}.png"
        figure.savefig(path, dpi=150)
        plt.close(figure)
        written.append(path)
    return written

"""Declarative campaign specifications.

A *campaign* is the full experiment grid of the paper expressed as data:
algorithms × adversary families × ``n`` values, with a trial count, a
master seed and an engine preference.  :class:`CampaignSpec` is the single
source of truth for that grid — the runner, the store and the report layer
all derive their structure from it.

Invariants:

* A spec is **validated on construction** against the live registries
  (:data:`repro.core.algorithm.registry` for algorithms,
  :data:`repro.adversaries.factory.ADVERSARY_FAMILIES` for adversary
  families, :data:`repro.sim.runner.ENGINES` for engines), so an invalid
  campaign fails before any cell runs.
* :meth:`CampaignSpec.spec_hash` covers exactly the *result-determining*
  fields (algorithms, adversaries, ns, trials, master seed, experiment
  label, adversary parameters).  The engine, block size and description are
  excluded on purpose: all engines produce identical results seed for seed,
  so a campaign resumed under a different engine must verify against the
  same hash.
* :meth:`CampaignSpec.cells` enumerates the grid in a fixed deterministic
  order (adversary-major, then algorithm, then ``n``) and every cell's
  :attr:`CampaignCell.key` is a pure function of ``(spec_hash, adversary,
  algorithm, n)`` — the content address used by the on-disk store.

Specs load from TOML (:func:`load_campaign_spec` with a ``.toml`` path,
via the standard-library ``tomllib``) or JSON; see ``docs/campaigns.md``
for the file format and a worked example.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..adversaries.factory import ADVERSARY_FAMILIES
from ..core.algorithm import DODAAlgorithm, registry
from ..sim.runner import ENGINES, AlgorithmFactory, validate_sweep_parameters

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "CampaignSpecError",
    "algorithm_factory_for",
    "load_campaign_spec",
    "spec_from_dict",
]


class CampaignSpecError(ValueError):
    """A campaign spec failed validation or could not be loaded."""


def algorithm_factory_for(name: str, tau: Optional[int] = None) -> AlgorithmFactory:
    """An ``n -> algorithm`` factory for a registered algorithm name.

    Fills in per-``n`` parameters the same way the CLI does: Waiting Greedy
    defaults its ``tau`` to the paper-optimal value unless overridden.

    Raises:
        CampaignSpecError: if ``name`` is not a registered algorithm.
    """
    if name not in registry.names():
        raise CampaignSpecError(
            f"unknown algorithm {name!r}; available: {', '.join(registry.names())}"
        )

    def factory(n: int) -> DODAAlgorithm:
        kwargs: Dict[str, Any] = {}
        if name == "waiting_greedy":
            from ..algorithms.waiting_greedy import optimal_tau

            kwargs["tau"] = tau if tau is not None else optimal_tau(n)
        return registry.create(name, **kwargs)

    return factory


@dataclass(frozen=True)
class CampaignCell:
    """One sweep cell of a campaign: all trials of one grid point.

    The cell is the unit of execution *and* of checkpointing: the runner
    executes a whole cell through one batched engine invocation and the
    store persists it as one shard.
    """

    adversary: str
    algorithm: str
    n: int
    key: str

    def label(self) -> str:
        """Human-readable cell label used in progress output."""
        return f"{self.adversary}/{self.algorithm}/n={self.n}"


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment campaign (validated on construction).

    Attributes:
        name: campaign identifier (used for the default store directory).
        algorithms: registered algorithm names to run.
        adversaries: adversary family names from
            :data:`~repro.adversaries.factory.ADVERSARY_FAMILIES`.
        ns: the ``n`` sweep (every value ``>= 2``).
        trials: independent trials per cell.
        master_seed: master seed; every trial's seed derives from
            ``(master_seed, experiment, algorithm, n, trial)`` exactly as in
            the plain sweep runners.
        experiment: seed-derivation label (changing it changes every seed).
        engine: default execution engine (overridable at run time — results
            are engine-invariant, wall-clock is not).
        block_size: committed-window override for the batched engines.
        adversary_params: per-family parameter overrides, e.g.
            ``{"zipf": {"exponent": 1.5}}``.
        ratio: when True every trial also captures the offline-optimum
            baseline, so store records carry ``opt_cost`` and
            ``competitive_ratio`` and reports grow ratio tables.  This
            changes the shard contents, so it *is* part of the spec hash —
            but only when enabled, keeping every pre-ratio store's hash
            (and thus its resumability) intact.
        description: free-form text, ignored by the hash.
    """

    name: str
    algorithms: Tuple[str, ...]
    ns: Tuple[int, ...]
    adversaries: Tuple[str, ...] = ("uniform",)
    trials: int = 12
    master_seed: int = 0
    experiment: str = "campaign"
    engine: str = "fast"
    block_size: Optional[int] = None
    adversary_params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    ratio: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise CampaignSpecError("campaign needs a non-empty name")
        if not self.algorithms:
            raise CampaignSpecError("campaign needs at least one algorithm")
        if not self.adversaries:
            raise CampaignSpecError("campaign needs at least one adversary family")
        for algorithm in self.algorithms:
            if algorithm not in registry.names():
                raise CampaignSpecError(
                    f"unknown algorithm {algorithm!r}; "
                    f"available: {', '.join(registry.names())}"
                )
        for adversary in self.adversaries:
            if adversary not in ADVERSARY_FAMILIES:
                raise CampaignSpecError(
                    f"unknown adversary family {adversary!r}; "
                    f"available: {sorted(ADVERSARY_FAMILIES)}"
                )
        if self.engine not in ENGINES:
            raise CampaignSpecError(
                f"unknown engine {self.engine!r}; available: {sorted(ENGINES)}"
            )
        try:
            validate_sweep_parameters(self.ns, self.trials)
        except ValueError as error:
            raise CampaignSpecError(str(error)) from None
        if self.block_size is not None and self.block_size < 1:
            raise CampaignSpecError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        for family in self.adversary_params:
            if family not in ADVERSARY_FAMILIES:
                raise CampaignSpecError(
                    f"adversary_params for unknown family {family!r}"
                )

    # ------------------------------------------------------------------ #
    # Hashing and enumeration
    # ------------------------------------------------------------------ #
    def result_fields(self) -> Dict[str, Any]:
        """The result-determining fields, in canonical (sorted-key) form.

        ``ratio`` joins the keyed fields only when enabled: capturing the
        offline baseline changes every shard's bytes, but a spec *without*
        it must keep the exact hash it had before the field existed so
        pre-ratio stores stay resume-compatible.
        """
        fields: Dict[str, Any] = {
            "adversaries": list(self.adversaries),
            "adversary_params": {
                family: dict(sorted(dict(params).items()))
                for family, params in sorted(dict(self.adversary_params).items())
            },
            "algorithms": list(self.algorithms),
            "experiment": self.experiment,
            "master_seed": self.master_seed,
            "ns": [int(n) for n in self.ns],
            "trials": self.trials,
        }
        if self.ratio:
            fields["ratio"] = True
        return fields

    def spec_hash(self) -> str:
        """SHA-256 over the canonical result-determining fields.

        Stable across engine/block-size/description changes and across
        processes (plain JSON, sorted keys, no floats in the keyed fields).
        """
        canonical = json.dumps(self.result_fields(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def cells(self) -> List[CampaignCell]:
        """The campaign's sweep cells in deterministic execution order."""
        spec_hash = self.spec_hash()
        cells: List[CampaignCell] = []
        for adversary in self.adversaries:
            for algorithm in self.algorithms:
                for n in self.ns:
                    cells.append(
                        CampaignCell(
                            adversary=adversary,
                            algorithm=algorithm,
                            n=int(n),
                            key=cell_key(spec_hash, adversary, algorithm, int(n)),
                        )
                    )
        return cells

    def params_for(self, adversary: str) -> Dict[str, Any]:
        """The parameter overrides of one adversary family (may be empty)."""
        return dict(self.adversary_params.get(adversary, {}))

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-serialisable representation (manifest ``spec`` field)."""
        data = self.result_fields()
        data.update(
            {
                "name": self.name,
                "description": self.description,
                "engine": self.engine,
                "block_size": self.block_size,
                "ratio": self.ratio,
            }
        )
        return data

    def with_engine(
        self, engine: Optional[str], block_size: Optional[int] = None
    ) -> "CampaignSpec":
        """A copy with the engine/block-size run-time overrides applied."""
        changes: Dict[str, Any] = {}
        if engine is not None:
            changes["engine"] = engine
        if block_size is not None:
            changes["block_size"] = block_size
        return replace(self, **changes) if changes else self


def cell_key(spec_hash: str, adversary: str, algorithm: str, n: int) -> str:
    """Content address of one cell: a pure function of grid point + spec."""
    digest = hashlib.sha256(
        f"{spec_hash}/{adversary}/{algorithm}/{n}".encode("utf-8")
    )
    return digest.hexdigest()[:16]


def spec_from_dict(data: Mapping[str, Any]) -> CampaignSpec:
    """Build a validated :class:`CampaignSpec` from a plain mapping.

    Accepts the exact key set of the TOML/JSON file format (see
    ``docs/campaigns.md``); unknown keys are rejected so typos fail loudly.

    Raises:
        CampaignSpecError: on unknown keys, missing required keys, or any
            validation failure.
    """
    known = {
        "name",
        "description",
        "algorithms",
        "adversaries",
        "ns",
        "trials",
        "master_seed",
        "experiment",
        "engine",
        "block_size",
        "adversary_params",
        "ratio",
    }
    unknown = set(data) - known
    if unknown:
        raise CampaignSpecError(
            f"unknown spec keys: {sorted(unknown)}; known keys: {sorted(known)}"
        )
    missing = {"name", "algorithms", "ns"} - set(data)
    if missing:
        raise CampaignSpecError(f"spec is missing required keys: {sorted(missing)}")

    def as_tuple(value: Any, key: str) -> Tuple[Any, ...]:
        if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
            raise CampaignSpecError(f"spec key {key!r} must be a list")
        return tuple(value)

    def as_int(value: Any, key: str) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, float, str)):
            raise CampaignSpecError(f"spec key {key!r} must be an integer, got {value!r}")
        try:
            return int(value)
        except (TypeError, ValueError):
            raise CampaignSpecError(
                f"spec key {key!r} must be an integer, got {value!r}"
            ) from None

    kwargs: Dict[str, Any] = {
        "name": data["name"],
        "algorithms": as_tuple(data["algorithms"], "algorithms"),
        "ns": tuple(as_int(n, "ns") for n in as_tuple(data["ns"], "ns")),
    }
    if "adversaries" in data:
        kwargs["adversaries"] = as_tuple(data["adversaries"], "adversaries")
    for key in ("trials", "master_seed", "block_size"):
        if data.get(key) is not None:
            kwargs[key] = as_int(data[key], key)
    for key in ("experiment", "engine", "description"):
        if key in data:
            kwargs[key] = str(data[key])
    if "ratio" in data:
        if not isinstance(data["ratio"], bool):
            raise CampaignSpecError(
                f"spec key 'ratio' must be a boolean, got {data['ratio']!r}"
            )
        kwargs["ratio"] = data["ratio"]
    if "adversary_params" in data:
        params = data["adversary_params"]
        if not isinstance(params, Mapping):
            raise CampaignSpecError("adversary_params must be a table/mapping")
        kwargs["adversary_params"] = {
            str(family): dict(overrides) for family, overrides in params.items()
        }
    return CampaignSpec(**kwargs)


def load_campaign_spec(path: "str | Path") -> CampaignSpec:
    """Load and validate a campaign spec from a ``.toml`` or ``.json`` file.

    Raises:
        CampaignSpecError: if the file is missing, not parseable, or fails
            spec validation.
    """
    spec_path = Path(path)
    if not spec_path.exists():
        raise CampaignSpecError(f"spec file not found: {spec_path}")
    text = spec_path.read_text(encoding="utf-8")
    suffix = spec_path.suffix.lower()
    try:
        if suffix == ".toml":
            import tomllib

            data = tomllib.loads(text)
        elif suffix == ".json":
            data = json.loads(text)
        else:
            raise CampaignSpecError(
                f"unsupported spec format {suffix!r} (use .toml or .json)"
            )
    except CampaignSpecError:
        raise
    except Exception as error:
        raise CampaignSpecError(f"could not parse {spec_path}: {error}") from None
    if not isinstance(data, Mapping):
        raise CampaignSpecError(f"{spec_path} must contain a table/object at top level")
    return spec_from_dict(data)

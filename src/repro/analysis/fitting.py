"""Growth-rate estimation for empirical validation of asymptotic claims.

Asymptotic bounds cannot be "matched" exactly at finite ``n``; the
reproduction instead fits the measured termination counts on a log-log scale
and checks that the fitted exponent is close to the claimed one, and that
the measured/bound ratio does not drift (monotone divergence would indicate
a wrong exponent even when the point estimate looks plausible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y ≈ c · n^alpha`` by least squares on log-log data."""

    exponent: float
    constant: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Predicted value at ``n``."""
        return self.constant * n ** self.exponent


def fit_power_law(ns: Sequence[float], values: Sequence[float]) -> PowerLawFit:
    """Fit ``values ≈ c · ns^alpha`` on a log-log scale.

    Raises:
        ValueError: with fewer than two points or non-positive data.
    """
    if len(ns) != len(values):
        raise ValueError("ns and values must have the same length")
    if len(ns) < 2:
        raise ValueError("need at least two points to fit a power law")
    if any(n <= 0 for n in ns) or any(v <= 0 for v in values):
        raise ValueError("power-law fitting requires positive data")
    log_n = np.log(np.asarray(ns, dtype=float))
    log_y = np.log(np.asarray(values, dtype=float))
    slope, intercept = np.polyfit(log_n, log_y, 1)
    predictions = slope * log_n + intercept
    residual = float(np.sum((log_y - predictions) ** 2))
    total = float(np.sum((log_y - log_y.mean()) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope), constant=float(math.exp(intercept)), r_squared=r_squared
    )


def fit_exponent_against_bound(
    ns: Sequence[float],
    values: Sequence[float],
    bound: Callable[[float], float],
) -> PowerLawFit:
    """Fit the *ratio* measured / bound to a power law.

    If the bound captures the true growth, the fitted exponent of the ratio
    is close to 0 (the ratio is asymptotically constant).  This is more
    sensitive than fitting the raw data when the bound contains logarithmic
    factors that a pure power law cannot represent.
    """
    ratios = [v / bound(float(n)) for n, v in zip(ns, values)]
    return fit_power_law(ns, ratios)


def ratio_drift(
    ns: Sequence[float],
    values: Sequence[float],
    bound: Callable[[float], float],
) -> float:
    """Log-slope of measured/bound: ~0 when the bound shape is right.

    Positive drift means the measurements grow faster than the bound,
    negative drift slower.
    """
    return fit_exponent_against_bound(ns, values, bound).exponent


def crossover_point(
    ns: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> Optional[float]:
    """Smallest ``n`` (interpolated) at which series A drops below series B.

    Used to locate the crossovers the paper's comparative claims imply (e.g.
    Waiting Greedy beating Gathering for large enough n).  Returns None when
    A never drops below B on the sampled range.
    """
    if not (len(ns) == len(series_a) == len(series_b)):
        raise ValueError("all series must have the same length")
    previous: Optional[Tuple[float, float]] = None
    for n, a, b in zip(ns, series_a, series_b):
        difference = a - b
        if difference <= 0:
            if previous is None:
                return float(n)
            n_prev, diff_prev = previous
            if diff_prev == difference:
                return float(n)
            # Linear interpolation of the sign change.
            fraction = diff_prev / (diff_prev - difference)
            return float(n_prev + fraction * (n - n_prev))
        previous = (float(n), difference)
    return None

"""Bound functions, growth-rate fitting and statistics for the experiments.

Role: turn raw trial measurements into verdicts — sample summaries and
concentration checks (:mod:`repro.analysis.statistics`), power-law
exponent fits against the paper's asymptotic bounds
(:mod:`repro.analysis.fitting`), and the bound functions themselves
(:mod:`repro.analysis.bounds`).  Consumers: the experiment modules
(E7–E16 verdicts) and the campaign report layer
(:mod:`repro.campaign.report`), which recomputes the same summaries and
fits from stored campaign shards.
"""

from .bounds import (
    BOUNDS,
    BoundComparison,
    broadcast_expected_exact,
    compare_to_bound,
    gathering_expected_exact,
    harmonic,
    last_transmission_expected,
    n_log_n,
    n_squared,
    n_squared_log_n,
    n_three_halves_sqrt_log_n,
    waiting_expected_exact,
)
from .fitting import (
    PowerLawFit,
    crossover_point,
    fit_exponent_against_bound,
    fit_power_law,
    ratio_drift,
)
from .ratio import (
    RatioPoint,
    fit_ratio_trend,
    ratio_points,
    summarize_finite_ratios,
)
from .statistics import (
    SampleSummary,
    chebyshev_deviation_bound,
    fraction_within,
    geometric_sweep,
    high_probability_threshold,
    summarize_sample,
)

__all__ = [
    "BOUNDS",
    "BoundComparison",
    "PowerLawFit",
    "RatioPoint",
    "SampleSummary",
    "broadcast_expected_exact",
    "chebyshev_deviation_bound",
    "compare_to_bound",
    "crossover_point",
    "fit_exponent_against_bound",
    "fit_power_law",
    "fit_ratio_trend",
    "fraction_within",
    "gathering_expected_exact",
    "geometric_sweep",
    "harmonic",
    "high_probability_threshold",
    "last_transmission_expected",
    "n_log_n",
    "n_squared",
    "n_squared_log_n",
    "n_three_halves_sqrt_log_n",
    "ratio_drift",
    "ratio_points",
    "summarize_finite_ratios",
    "summarize_sample",
    "waiting_expected_exact",
]

"""Summary statistics and concentration helpers used by the experiments.

The paper's "with high probability" statements are backed by Chebyshev
bounds; the reproduction reports empirical means, standard deviations,
confidence intervals and tail fractions so that the concentration claims
(e.g. "terminates within tau w.h.p.") can be checked directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SampleSummary:
    """Mean / spread summary of a sample of measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p90: float
    p99: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        half = z * self.sem
        return (self.mean - half, self.mean + half)


def summarize_sample(values: Sequence[float]) -> SampleSummary:
    """Compute a :class:`SampleSummary` (raises on an empty sample)."""
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sample")
    array = np.asarray(values, dtype=float)
    return SampleSummary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        maximum=float(array.max()),
        median=float(np.median(array)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
    )


def fraction_within(values: Sequence[float], threshold: float) -> float:
    """Fraction of measurements that are ``<= threshold``.

    This is the empirical counterpart of "terminates within tau with high
    probability".
    """
    if len(values) == 0:
        raise ValueError("cannot compute a fraction on an empty sample")
    array = np.asarray(values, dtype=float)
    return float(np.mean(array <= threshold))


def chebyshev_deviation_bound(std: float, deviation: float) -> float:
    """Chebyshev bound ``P(|X - E X| > deviation) <= (std/deviation)^2``."""
    if deviation <= 0:
        raise ValueError("deviation must be positive")
    if std < 0:
        raise ValueError("std must be non-negative")
    return min(1.0, (std / deviation) ** 2)


def high_probability_threshold(n: int) -> float:
    """The paper's w.h.p. threshold: events of probability ``1 - o(1/log n)``.

    Returns the failure-probability budget ``1 / log(n)`` used when checking
    empirical tail fractions (a measured failure rate well below this budget
    is consistent with the w.h.p. claim).
    """
    if n < 3:
        raise ValueError("n must be at least 3")
    return 1.0 / math.log(n)


def geometric_sweep(start: int, stop: int, points: int) -> List[int]:
    """A geometric progression of integers from ``start`` to ``stop`` inclusive.

    Used to build ``n`` sweeps for the scaling experiments; duplicate values
    caused by rounding are removed while preserving order, so the result is
    always strictly increasing and ends exactly at ``stop``.

    Raises:
        ValueError: if ``start < 1``, ``stop < start`` or ``points < 1``.
    """
    if start < 1:
        raise ValueError(f"sweep start must be >= 1, got {start}")
    if stop < start:
        raise ValueError(f"sweep stop ({stop}) must be >= start ({start})")
    if points < 1:
        raise ValueError(f"sweep needs at least one point, got {points}")
    if points == 1 or start == stop:
        return [start]
    ratio = (stop / start) ** (1.0 / (points - 1))
    values: List[int] = []
    for index in range(points):
        # Clamp so float error can never overshoot the endpoints; rounding
        # collapse then only ever *drops* points instead of producing a
        # non-increasing or duplicated tail.
        value = min(max(int(round(start * ratio ** index)), start), stop)
        if not values or value > values[-1]:
            values.append(value)
    if values[-1] != stop:
        # Safe: clamping guarantees values[-2] < values[-1] < stop here.
        values[-1] = stop
    return values

"""Competitive-ratio aggregation helpers.

Turns per-trial ``competitive_ratio`` values (captured by the engines'
``capture_opt`` path, see :mod:`repro.ratio`) into the summaries the sweep
tables, campaign reports and experiment E25 all share: per-``n`` sample
summaries with confidence intervals, and a power-law fit of the mean ratio
against ``n`` (``ratio ≈ c · n^alpha``) that quantifies the paper's
ratio-vs-``n`` trend per algorithm × adversary family.

Only *finite* ratios enter the summaries — ``inf`` (online run did not
terminate) and undefined ratios (offline baseline unreachable) are counted
separately so a report can state how many trials were excluded instead of
silently skewing the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .fitting import PowerLawFit, fit_power_law
from .statistics import SampleSummary, summarize_sample

__all__ = ["RatioPoint", "fit_ratio_trend", "ratio_points", "summarize_finite_ratios"]


@dataclass(frozen=True)
class RatioPoint:
    """Ratio statistics of one ``(algorithm, adversary, n)`` cell."""

    n: int
    captured: int
    finite: int
    summary: Optional[SampleSummary]

    @property
    def mean(self) -> float:
        """Mean finite ratio (``inf`` when no trial has a finite ratio)."""
        return self.summary.mean if self.summary else math.inf

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI of the mean finite ratio."""
        if self.summary is None:
            return (math.inf, math.inf)
        return self.summary.confidence_interval(z)


def summarize_finite_ratios(values: Sequence[Optional[float]]) -> Optional[SampleSummary]:
    """Summary of the finite entries of a ratio sample (None when empty)."""
    finite = [
        float(value)
        for value in values
        if value is not None and math.isfinite(value)
    ]
    if not finite:
        return None
    return summarize_sample(finite)


def ratio_points(
    per_n: Sequence[Tuple[int, Sequence[Optional[float]]]]
) -> List[RatioPoint]:
    """One :class:`RatioPoint` per ``(n, ratios)`` pair, in input order."""
    points: List[RatioPoint] = []
    for n, values in per_n:
        captured = [value for value in values if value is not None]
        points.append(
            RatioPoint(
                n=int(n),
                captured=len(captured),
                finite=sum(1 for value in captured if math.isfinite(value)),
                summary=summarize_finite_ratios(values),
            )
        )
    return points


def fit_ratio_trend(points: Sequence[RatioPoint]) -> Optional[PowerLawFit]:
    """Power-law fit of the mean finite ratio against ``n``.

    Returns None when fewer than two points carry a finite mean — a fit on
    a single point (or on infinities) would be noise dressed as a trend.
    """
    usable = [
        (point.n, point.mean)
        for point in points
        if point.summary is not None and point.mean > 0
    ]
    if len(usable) < 2:
        return None
    ns = [n for n, _ in usable]
    means = [mean for _, mean in usable]
    return fit_power_law(ns, means)

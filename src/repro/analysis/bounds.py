"""Theoretical bound functions from the paper, as callables of ``n``.

These are used by the benches and EXPERIMENTS.md to compare measured
termination times against the claimed growth rates:

* broadcast / full knowledge / future knowledge: ``Θ(n log n)``
  (Theorem 8, Corollary 1);
* Waiting: ``O(n² log n)`` (Theorem 9);
* Gathering and the no-knowledge lower bound: ``Θ(n²)``
  (Theorems 7 and 9, Corollary 2);
* Waiting Greedy: ``Θ(n^{3/2} √log n)`` (Theorem 10, Corollary 3);
* Lemma 1: within ``n·f(n)`` interactions, ``Θ(f(n))`` distinct nodes meet
  the sink.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence


def n_log_n(n: float) -> float:
    """``n log n`` — broadcast / full-knowledge convergecast (Theorem 8)."""
    return n * math.log(n)


def n_squared(n: float) -> float:
    """``n²`` — Gathering upper bound and no-knowledge lower bound (Thm 7/9)."""
    return n * n


def n_squared_log_n(n: float) -> float:
    """``n² log n`` — Waiting upper bound (Theorem 9)."""
    return n * n * math.log(n)


def n_three_halves_sqrt_log_n(n: float) -> float:
    """``n^{3/2} √(log n)`` — Waiting Greedy with optimal tau (Corollary 3)."""
    return n ** 1.5 * math.sqrt(math.log(n))


def waiting_expected_exact(n: int) -> float:
    """Exact expectation of Waiting: ``n(n-1)/2 · H(n-1)`` (proof of Thm 9)."""
    return n * (n - 1) / 2.0 * harmonic(n - 1)


def gathering_expected_exact(n: int) -> float:
    """Exact expectation of Gathering: ``n(n-1) Σ 1/(i(i+1))`` (proof of Thm 9)."""
    return n * (n - 1) * sum(1.0 / (i * (i + 1)) for i in range(1, n))


def broadcast_expected_exact(n: int) -> float:
    """Exact expectation of flooding broadcast: ``(n-1) H(n-1)`` (proof of Thm 8)."""
    return (n - 1) * harmonic(n - 1)


def last_transmission_expected(n: int) -> float:
    """Expected wait for one specific pair to interact: ``n(n-1)/2`` (Thm 7)."""
    return n * (n - 1) / 2.0


def harmonic(k: int) -> float:
    """The harmonic number ``H(k)``."""
    return sum(1.0 / i for i in range(1, k + 1))


#: Name -> bound function, for table rendering.
BOUNDS: Dict[str, Callable[[float], float]] = {
    "n_log_n": n_log_n,
    "n_squared": n_squared,
    "n_squared_log_n": n_squared_log_n,
    "n_three_halves_sqrt_log_n": n_three_halves_sqrt_log_n,
}


@dataclass(frozen=True)
class BoundComparison:
    """Measured values compared against a theoretical bound over an n sweep."""

    ns: tuple
    measured: tuple
    bound_values: tuple
    ratios: tuple
    bound_name: str

    @property
    def ratio_spread(self) -> float:
        """max ratio / min ratio — close to 1 when the bound shape matches."""
        finite = [r for r in self.ratios if r > 0]
        if not finite:
            return math.inf
        return max(finite) / min(finite)


def compare_to_bound(
    ns: Sequence[int],
    measured: Sequence[float],
    bound: Callable[[float], float],
    bound_name: str = "bound",
) -> BoundComparison:
    """Compute measured / bound ratios over an ``n`` sweep."""
    if len(ns) != len(measured):
        raise ValueError("ns and measured must have the same length")
    bound_values = [bound(float(n)) for n in ns]
    ratios = [
        (m / b if b else math.inf) for m, b in zip(measured, bound_values)
    ]
    return BoundComparison(
        ns=tuple(ns),
        measured=tuple(measured),
        bound_values=tuple(bound_values),
        ratios=tuple(ratios),
        bound_name=bound_name,
    )

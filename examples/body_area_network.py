#!/usr/bin/env python3
"""Body-area sensor network scenario (the paper's first motivating example).

"Sensors deployed on a human body" produce a small, periodic but
activity-dependent contact pattern: during some activity phases a sensor
cannot reach the hub directly and must relay through a neighbouring sensor.
This example synthesises such a trace, checks that aggregation is feasible
at all, and compares the paper's algorithms on it — including how well the
optimal offline schedule (which a deployment could precompute if the
activity schedule is known) does against the online algorithms.

Run with::

    python examples/body_area_network.py [--sensors 10] [--cycles 40]
"""

from __future__ import annotations

import argparse
import math

from repro import (
    Executor,
    FullKnowledge,
    Gathering,
    KnowledgeBundle,
    SpanningTreeAggregation,
    UnderlyingGraphKnowledge,
    Waiting,
    cost_of_result,
)
from repro.graph import BodyAreaNetworkTrace, aggregation_feasible, summarize
from repro.knowledge import FullKnowledge as FullKnowledgeOracle
from repro.offline.convergecast import opt


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sensors", type=int, default=10, help="number of on-body sensors")
    parser.add_argument("--cycles", type=int, default=40, help="number of activity cycles")
    parser.add_argument("--seed", type=int, default=3, help="trace RNG seed")
    args = parser.parse_args()

    trace = BodyAreaNetworkTrace(
        sensor_count=args.sensors, cycles=args.cycles, seed=args.seed
    ).build()

    stats = summarize(trace)
    print("Body-area network trace")
    print(f"  nodes:              {stats.node_count} (hub + {args.sensors} sensors)")
    print(f"  contacts:           {stats.interaction_count}")
    print(f"  distinct links:     {stats.distinct_pairs}")
    print(f"  hub contacts:       {stats.sink_contact_count}")
    print(f"  feasible:           {aggregation_feasible(trace)}")
    optimum = opt(trace.sequence, trace.nodes, trace.sink)
    print(f"  offline optimum:    {int(optimum) + 1} contacts")
    print()

    lineup = [
        ("waiting", Waiting(), None),
        ("gathering", Gathering(), None),
        (
            "spanning tree (knows link map)",
            SpanningTreeAggregation(),
            KnowledgeBundle(
                UnderlyingGraphKnowledge(trace.nodes, sequence=trace.sequence)
            ),
        ),
        (
            "offline schedule (full knowledge)",
            FullKnowledge(),
            KnowledgeBundle(FullKnowledgeOracle(trace.sequence)),
        ),
    ]

    print(f"{'algorithm':36s} {'contacts used':>14s} {'cost':>6s} {'done':>6s}")
    print("-" * 66)
    for label, algorithm, knowledge in lineup:
        executor = Executor(trace.nodes, trace.sink, algorithm, knowledge=knowledge)
        result = executor.run(trace.sequence)
        breakdown = cost_of_result(result, trace.sequence, trace.nodes, trace.sink)
        duration = result.duration if result.terminated else math.inf
        print(
            f"{label:36s} {duration:14.0f} {breakdown.cost:6.0f} "
            f"{str(result.terminated):>6s}"
        )

    print()
    print(
        "Each sensor transmits exactly once (the model's energy constraint), so\n"
        "the 'contacts used' column is the time-to-completion, not an energy cost."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run every DODA algorithm of the paper on one random instance.

This example builds a single randomized-adversary instance (the model of
Section 4 of the paper), runs each algorithm on it with the knowledge it
requires, and prints the number of interactions each one needed together
with the offline optimum and the paper's cost measure.

Run with::

    python examples/quickstart.py [--n 60] [--seed 1]
"""

from __future__ import annotations

import argparse
import math

from repro import (
    Executor,
    FullKnowledge,
    FutureBroadcast,
    Gathering,
    KnowledgeBundle,
    MeetTimeKnowledge,
    Waiting,
    WaitingGreedy,
    cost_of_result,
    optimal_tau,
    uniform_random_sequence,
)
from repro.knowledge import FullKnowledge as FullKnowledgeOracle
from repro.knowledge import FutureKnowledge
from repro.offline.convergecast import opt


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=60, help="number of nodes")
    parser.add_argument("--seed", type=int, default=1, help="adversary seed")
    args = parser.parse_args()

    n, seed = args.n, args.seed
    nodes = list(range(n))
    sink = 0

    # Commit the randomized adversary's choices up front so that every
    # algorithm (and every knowledge oracle) sees exactly the same future.
    horizon = 10 * n * n
    sequence = uniform_random_sequence(nodes, horizon, seed=seed)

    offline_optimum = opt(sequence, nodes, sink)
    print(f"Instance: n={n}, seed={seed}, committed horizon={horizon} interactions")
    print(f"Offline optimum (opt(0) + 1): {int(offline_optimum) + 1} interactions")
    print()

    tau = optimal_tau(n, constant=2.0)
    lineup = [
        ("waiting        (no knowledge)", Waiting(), None),
        ("gathering      (no knowledge)", Gathering(), None),
        (
            f"waiting greedy (meetTime, tau={tau})",
            WaitingGreedy(tau=tau),
            KnowledgeBundle(MeetTimeKnowledge(sequence, sink, horizon=horizon)),
        ),
        (
            "future broadcast (own future)",
            FutureBroadcast(),
            KnowledgeBundle(FutureKnowledge(sequence)),
        ),
        (
            "full knowledge (whole sequence)",
            FullKnowledge(),
            KnowledgeBundle(FullKnowledgeOracle(sequence)),
        ),
    ]

    print(f"{'algorithm':38s} {'interactions':>12s} {'cost':>6s}")
    print("-" * 60)
    for label, algorithm, knowledge in lineup:
        executor = Executor(nodes, sink, algorithm, knowledge=knowledge)
        result = executor.run(sequence)
        breakdown = cost_of_result(result, sequence, nodes, sink)
        duration = result.duration if result.terminated else math.inf
        cost = breakdown.cost
        print(f"{label:38s} {duration:12.0f} {cost:6.0f}")

    print()
    print(
        "Expected shape (Section 4 of the paper): more knowledge means fewer\n"
        "interactions — full knowledge ~ n log n, waiting greedy ~ n^1.5*sqrt(log n),\n"
        "gathering ~ n^2, waiting ~ n^2 log n."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Adversary showdown: replay the paper's impossibility constructions.

The negative results of the paper (Theorems 1–3) are constructive: they
describe adversaries that starve any online algorithm while an offline
schedule would keep succeeding.  This example replays those constructions
against the concrete algorithms of the library and prints, side by side,
how long the algorithm was starved versus how many offline convergecasts
would have fit in the same interactions — i.e. the cost blowing up.

Run with::

    python examples/adversary_showdown.py [--horizon 2000]
"""

from __future__ import annotations

import argparse
import math

from repro import (
    Executor,
    Gathering,
    KnowledgeBundle,
    SpanningTreeAggregation,
    Theorem1Adversary,
    Theorem2Construction,
    Theorem3Adversary,
    UnderlyingGraphKnowledge,
    Waiting,
)
from repro.core.cost import convergecast_milestones
from repro.core.execution import RecordingProvider


def starvation_report(name, adversary, algorithm, nodes, sink, horizon, knowledge=None):
    recording = RecordingProvider(adversary)
    executor = Executor(nodes, sink, algorithm, knowledge=knowledge)
    result = executor.run(recording, max_interactions=horizon)
    sequence = recording.recorded_sequence()
    milestones = convergecast_milestones(sequence, nodes, sink, max_milestones=horizon)
    fitted = sum(1 for m in milestones if not math.isinf(m))
    print(
        f"{name:46s} terminated={str(result.terminated):5s} "
        f"offline convergecasts that fit: {fitted:4d}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=int, default=2000, help="interactions to play")
    args = parser.parse_args()
    horizon = args.horizon

    print("Theorem 1 — adaptive adversary, 3 nodes, no knowledge")
    for algorithm in (Gathering(), Waiting()):
        adversary = Theorem1Adversary()
        starvation_report(
            f"  {algorithm.name} vs Theorem1Adversary",
            adversary,
            algorithm,
            adversary.nodes(),
            adversary.sink,
            horizon,
        )

    print()
    print("Theorem 2 — oblivious adversary vs oblivious algorithms (n=12)")
    construction = Theorem2Construction(n=12, estimation_trials=100, seed=0)
    adversary = construction.build(Gathering)
    executor = Executor(construction.node_names(), "s", Gathering())
    result = executor.run(adversary, max_interactions=horizon)
    sequence = adversary.committed_prefix(horizon)
    milestones = convergecast_milestones(
        sequence, construction.node_names(), "s", max_milestones=200
    )
    fitted = sum(1 for m in milestones if not math.isinf(m))
    print(
        f"  gathering vs Theorem2 construction          terminated={str(result.terminated):5s} "
        f"offline convergecasts that fit: {fitted:4d}"
    )

    print()
    print("Theorem 3 — adaptive adversary on the 4-cycle, nodes know G-bar")
    adversary = Theorem3Adversary()
    knowledge = KnowledgeBundle(
        UnderlyingGraphKnowledge(adversary.nodes(), edges=adversary.underlying_graph_edges())
    )
    starvation_report(
        "  spanning_tree vs Theorem3Adversary",
        adversary,
        SpanningTreeAggregation(),
        adversary.nodes(),
        adversary.sink,
        horizon,
        knowledge=knowledge,
    )

    print()
    print(
        "Every row with terminated=False and a growing number of offline\n"
        "convergecasts is an execution whose cost (paper, Section 2.3) is\n"
        "unbounded: the online algorithm is starved forever while the offline\n"
        "optimum could have aggregated the network again and again."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Vehicular / disruption-tolerant network scenario (the paper's second example).

"Cars evolving in a city that communicate with each other in an ad hoc
manner": vehicles move on a Manhattan grid, meet each other on road
segments, and occasionally pass the road-side unit (the sink) at the central
intersection.  The example compares the online algorithms on this trace and
shows how the meetTime knowledge (a navigation system knows when a car will
next pass the road-side unit) closes most of the gap to the offline optimum.

Run with::

    python examples/vehicular_dtn.py [--vehicles 20] [--steps 600]
"""

from __future__ import annotations

import argparse
import math

from repro import (
    Executor,
    FullKnowledge,
    Gathering,
    KnowledgeBundle,
    MeetTimeKnowledge,
    Waiting,
    WaitingGreedy,
    cost_of_result,
)
from repro.graph import VehicularGridTrace, summarize
from repro.knowledge import FullKnowledge as FullKnowledgeOracle
from repro.offline.convergecast import opt


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=20, help="number of vehicles")
    parser.add_argument("--grid", type=int, default=6, help="grid size (streets per side)")
    parser.add_argument("--steps", type=int, default=600, help="mobility steps")
    parser.add_argument("--seed", type=int, default=9, help="trace RNG seed")
    args = parser.parse_args()

    trace = VehicularGridTrace(
        vehicle_count=args.vehicles,
        grid_size=args.grid,
        steps=args.steps,
        seed=args.seed,
    ).build()

    stats = summarize(trace)
    optimum = opt(trace.sequence, trace.nodes, trace.sink)
    print("Vehicular contact trace")
    print(f"  nodes:           {stats.node_count} (road-side unit + {args.vehicles} cars)")
    print(f"  contacts:        {stats.interaction_count}")
    print(f"  RSU contacts:    {stats.sink_contact_count}")
    if math.isinf(optimum):
        print("  offline optimum: aggregation impossible on this trace; rerun with more steps")
        return
    print(f"  offline optimum: {int(optimum) + 1} contacts")
    print()

    # tau: give Waiting Greedy a third of the trace to exploit meetTime.
    tau = trace.length // 3
    lineup = [
        ("waiting (no knowledge)", Waiting(), None),
        ("gathering (no knowledge)", Gathering(), None),
        (
            f"waiting greedy (meetTime, tau={tau})",
            WaitingGreedy(tau=tau),
            KnowledgeBundle(
                MeetTimeKnowledge(trace.sequence, trace.sink, horizon=trace.length)
            ),
        ),
        (
            "offline schedule (full knowledge)",
            FullKnowledge(),
            KnowledgeBundle(FullKnowledgeOracle(trace.sequence)),
        ),
    ]

    print(f"{'algorithm':40s} {'contacts used':>14s} {'cost':>6s} {'done':>6s}")
    print("-" * 72)
    for label, algorithm, knowledge in lineup:
        executor = Executor(trace.nodes, trace.sink, algorithm, knowledge=knowledge)
        result = executor.run(trace.sequence)
        breakdown = cost_of_result(result, trace.sequence, trace.nodes, trace.sink)
        duration = result.duration if result.terminated else math.inf
        print(
            f"{label:40s} {duration:14.0f} {breakdown.cost:6.0f} "
            f"{str(result.terminated):>6s}"
        )


if __name__ == "__main__":
    main()
